"""Sparse fast path vs dense fallback: equivalence and caching.

The CSR propagation path must be a pure optimization — every consumer
(completion ops, GCN, SimpleHGN) exposes a dense fallback flag, and this
module pins down that both paths produce the same numbers on seeded
small graphs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import GCNCompletion, MeanCompletion, PPNPCompletion
from repro.graph import LRUCache
from repro.models import build_model
from repro.tensor import Tensor
from repro.training import set_seed


@pytest.mark.parametrize("op_cls", [MeanCompletion, GCNCompletion,
                                    PPNPCompletion])
def test_completion_sparse_matches_dense(op_cls, imdb_tiny):
    set_seed(0)
    sparse_op = op_cls(imdb_tiny, hidden_dim=16, use_sparse=True)
    set_seed(0)
    dense_op = op_cls(imdb_tiny, hidden_dim=16, use_sparse=False)
    np.testing.assert_allclose(sparse_op._base, dense_op._base, atol=1e-6)
    np.testing.assert_allclose(sparse_op().data, dense_op().data, atol=1e-6)


def test_gcn_model_sparse_matches_dense(imdb_tiny):
    n = imdb_tiny.graph.num_nodes
    h0 = np.random.default_rng(0).normal(size=(n, 32))
    set_seed(0)
    sparse_model = build_model("gcn", imdb_tiny, hidden_dim=32, out_dim=32,
                               use_sparse=True)
    set_seed(0)
    dense_model = build_model("gcn", imdb_tiny, hidden_dim=32, out_dim=32,
                              use_sparse=False)
    sparse_model.eval()
    dense_model.eval()
    np.testing.assert_allclose(sparse_model(Tensor(h0)).data,
                               dense_model(Tensor(h0)).data, atol=1e-6)


def test_simple_hgn_sparse_matches_scatter(imdb_tiny):
    n = imdb_tiny.graph.num_nodes
    h0 = np.random.default_rng(1).normal(size=(n, 32))
    set_seed(0)
    sparse_model = build_model("simple_hgn", imdb_tiny, hidden_dim=32,
                               out_dim=32, use_sparse=True)
    set_seed(0)
    scatter_model = build_model("simple_hgn", imdb_tiny, hidden_dim=32,
                                out_dim=32, use_sparse=False)
    sparse_model.eval()
    scatter_model.eval()

    x_sparse = Tensor(h0, requires_grad=True)
    x_scatter = Tensor(h0.copy(), requires_grad=True)
    out_sparse = sparse_model(x_sparse)
    out_scatter = scatter_model(x_scatter)
    np.testing.assert_allclose(out_sparse.data, out_scatter.data, atol=1e-6)

    out_sparse.sum().backward()
    out_scatter.sum().backward()
    np.testing.assert_allclose(x_sparse.grad, x_scatter.grad, atol=1e-6)
    for (name, p_sp), (_, p_sc) in zip(
            sparse_model.named_parameters(), scatter_model.named_parameters()):
        assert p_sp.grad is not None, name
        np.testing.assert_allclose(p_sp.grad, p_sc.grad, atol=1e-6,
                                   err_msg=name)


class TestNormalizedAdjacencyCache:
    def test_repeated_requests_hit_cache(self, imdb_tiny):
        graph = imdb_tiny.graph
        first = graph.normalized_adjacency(mode="sym", self_loops=True)
        second = graph.normalized_adjacency(mode="sym", self_loops=True)
        assert first is second

    def test_modes_are_distinct_entries(self, imdb_tiny):
        graph = imdb_tiny.graph
        sym = graph.normalized_adjacency(mode="sym")
        row = graph.normalized_adjacency(mode="row")
        assert sym is not row
        row_sums = row.row_sums()
        assert np.all((np.abs(row_sums - 1.0) < 1e-12) | (row_sums == 0.0))

    def test_unknown_mode_rejected(self, imdb_tiny):
        with pytest.raises(ValueError):
            imdb_tiny.graph.normalized_adjacency(mode="bogus")

    def test_block_adjacency_shape_and_cache(self, imdb_tiny):
        graph = imdb_tiny.graph
        src_type, dst_type = graph.node_types[0], graph.node_types[1]
        block = graph.block_adjacency(src_type, dst_type, mode="row")
        assert block.shape == (graph.num_nodes_of(src_type),
                               graph.num_nodes_of(dst_type))
        assert graph.block_adjacency(src_type, dst_type, mode="row") is block

    def test_block_adjacency_rejects_cross_type_self_loops(self, imdb_tiny):
        graph = imdb_tiny.graph
        with pytest.raises(ValueError):
            graph.block_adjacency(graph.node_types[0], graph.node_types[1],
                                  self_loops=True)

    def test_mutation_invalidates(self, toy_graph):
        before = toy_graph.normalized_adjacency(mode="sym")
        pairs = toy_graph.edges_local(toy_graph.relations[0])
        toy_graph.add_relation(
            (toy_graph.relations[0][0], "extra", toy_graph.relations[0][2]),
            pairs[:, :1])
        after = toy_graph.normalized_adjacency(mode="sym")
        assert before is not after


class TestBiadjacencyCacheSafety:
    def test_compose_biadjacency_does_not_mutate_cache(self):
        from repro.graph import HeteroGraph
        from repro.graph.metapath import compose_biadjacency

        # duplicate (0, 0) edge → cached biadjacency entry of 2.0
        edges = {("user", "likes", "item"):
                 np.array([[0, 0, 1], [0, 0, 1]])}
        graph = HeteroGraph({"user": 2, "item": 2}, edges)
        relation = graph.relations[0]
        before = graph.biadjacency(relation).toarray().copy()
        compose_biadjacency(graph, ("user", "item"), binarize=True)
        np.testing.assert_array_equal(graph.biadjacency(relation).toarray(),
                                      before)


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(maxsize=2)
        cache.get("a", lambda: 1)
        cache.get("b", lambda: 2)
        cache.get("a", lambda: 1)  # refresh "a"
        cache.get("c", lambda: 3)  # evicts "b"
        assert "a" in cache and "c" in cache and "b" not in cache

    def test_hit_and_miss_counters(self):
        cache = LRUCache(maxsize=4)
        cache.get("k", lambda: 1)
        cache.get("k", lambda: 1)
        assert cache.misses == 1
        assert cache.hits == 1

    def test_rejects_non_positive_size(self):
        with pytest.raises(ValueError):
            LRUCache(maxsize=0)
