"""Tests for the completion operations and feature builders."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import (
    DEFAULT_SPACE,
    FixedAssignmentFeatures,
    GCNCompletion,
    HandcraftedFeatures,
    MeanCompletion,
    OneHotCompletion,
    PPNPCompletion,
    SearchSpace,
    SingleOpFeatures,
    WeightedCompletionFeatures,
    available_ops,
    register_op,
)
from repro.completion.ops import _attributed_restriction
from repro.datasets import HeteroDataset, Split, generate
from repro.datasets.generator import RelationSpec, SchemaSpec
from repro.graph import HeteroGraph
from repro.tensor import Tensor


@pytest.fixture()
def micro_dataset() -> HeteroDataset:
    """Hand-built dataset: 3 attributed 'item' nodes, 2 missing 'user' nodes.

    user0 — item0, item1;   user1 — item2
    Attributes: item_i = e_i basis vectors, so completed values are exact.
    """
    edges = {("user", "likes", "item"): np.array([[0, 0, 1], [0, 1, 2]])}
    graph = HeteroGraph({"user": 2, "item": 3}, edges)
    graph.add_reverse_relations()
    features = {"user": None, "item": np.eye(3)}
    return HeteroDataset(
        name="micro",
        graph=graph,
        target_type="user",
        features=features,
        labels=np.array([0, 1]),
        num_classes=2,
        split=Split(train=np.array([0]), val=np.array([1]),
                    test=np.array([], dtype=int)),
    )


class TestRestriction:
    def test_only_attributed_columns_survive(self, micro_dataset):
        restricted = _attributed_restriction(micro_dataset)
        # columns 0..1 are users (missing) → must be empty
        assert restricted[:, :2].nnz == 0
        assert restricted[:, 2:].nnz > 0


class TestMeanCompletion:
    def test_exact_mean_of_attributed_neighbors(self, micro_dataset):
        op = MeanCompletion(micro_dataset, hidden_dim=3)
        op.weight.data = np.eye(3)  # identity transform exposes the base
        out = op().data
        # user0 averages item0,item1 → [0.5, 0.5, 0]
        np.testing.assert_allclose(out[0], [0.5, 0.5, 0.0])
        # user1 sees only item2 → [0, 0, 1]
        np.testing.assert_allclose(out[1], [0.0, 0.0, 1.0])

    def test_gradient_reaches_weight(self, micro_dataset):
        op = MeanCompletion(micro_dataset, hidden_dim=4)
        op().sum().backward()
        assert op.weight.grad is not None


class TestGCNCompletion:
    def test_renormalized_coefficients(self, micro_dataset):
        op = GCNCompletion(micro_dataset, hidden_dim=3)
        op.weight.data = np.eye(3)
        out = op().data
        # user0 (deg 2) ← item0 (deg 1): coefficient 1/sqrt(2*1)
        np.testing.assert_allclose(out[0, 0], 1 / np.sqrt(2), rtol=1e-10)
        # user1 (deg 1) ← item2 (deg 1): coefficient 1
        np.testing.assert_allclose(out[1, 2], 1.0, rtol=1e-10)


def _chain_dataset() -> HeteroDataset:
    """user1 — item1 — user0 — item0: item0 is 3 hops from user1."""
    edges = {("user", "likes", "item"): np.array([[0, 0, 1], [0, 1, 1]])}
    graph = HeteroGraph({"user": 2, "item": 2}, edges)
    graph.add_reverse_relations()
    return HeteroDataset(
        name="chain",
        graph=graph,
        target_type="user",
        features={"user": None, "item": np.eye(2)},
        labels=np.array([0, 1]),
        num_classes=2,
        split=Split(train=np.array([0]), val=np.array([1]),
                    test=np.array([], dtype=int)),
    )


class TestPPNPCompletion:
    def test_alpha_validation(self, micro_dataset):
        with pytest.raises(ValueError):
            PPNPCompletion(micro_dataset, hidden_dim=4, alpha=0.0)

    def test_reaches_multi_hop(self):
        ds = _chain_dataset()
        op = PPNPCompletion(ds, hidden_dim=2, alpha=0.1, iterations=30)
        op.weight.data = np.eye(2)
        out = op().data
        # user1 (row 1 of V⁻ = users) receives mass from item0, 3 hops away,
        # which 1-hop mean/GCN completion would never see
        assert out[1, 0] > 0.0

    def test_one_hop_ops_blind_to_multi_hop(self):
        """Contrast: mean completion sees nothing of the 3-hop item."""
        ds = _chain_dataset()
        op = MeanCompletion(ds, hidden_dim=2)
        op.weight.data = np.eye(2)
        np.testing.assert_allclose(op().data[1, 0], 0.0)

    def test_restart_probability_controls_locality(self):
        ds = _chain_dataset()
        local = PPNPCompletion(ds, hidden_dim=2, alpha=0.9, iterations=50)
        globl = PPNPCompletion(ds, hidden_dim=2, alpha=0.05, iterations=50)
        local.weight.data = np.eye(2)
        globl.weight.data = np.eye(2)
        # relative weight of the far item (col 0) vs the near item (col 1)
        ratio_local = local().data[1, 0] / max(local().data[1, 1], 1e-12)
        ratio_global = globl().data[1, 0] / max(globl().data[1, 1], 1e-12)
        assert ratio_global > ratio_local


class TestOneHotCompletion:
    def test_rows_are_independent_parameters(self, micro_dataset):
        op = OneHotCompletion(micro_dataset, hidden_dim=4)
        out = op()
        out[0].sum().backward()
        assert np.abs(op.table.grad[0]).sum() > 0
        np.testing.assert_allclose(op.table.grad[1], 0.0)


class TestSearchSpace:
    def test_default_space(self):
        space = SearchSpace()
        assert list(space) == DEFAULT_SPACE
        assert len(space) == 4

    def test_duplicate_and_unknown_rejected(self):
        with pytest.raises(ValueError):
            SearchSpace(["mean", "mean"])
        with pytest.raises(KeyError):
            SearchSpace(["mean", "wavelet"])
        with pytest.raises(ValueError):
            SearchSpace([])

    def test_build_ops_order(self, micro_dataset):
        space = SearchSpace(["one_hot", "mean"])
        ops = space.build_ops(micro_dataset, 4)
        assert isinstance(ops[0], OneHotCompletion)
        assert isinstance(ops[1], MeanCompletion)

    def test_register_custom_op(self, micro_dataset):
        class ZeroCompletion(OneHotCompletion):
            name = "zero_test"

            def forward(self):
                return self.table * 0.0

        register_op("zero_test", ZeroCompletion, overwrite=True)
        assert "zero_test" in available_ops()
        space = SearchSpace(["zero_test"])
        op = space.build_ops(micro_dataset, 4)[0]
        np.testing.assert_allclose(op().data, 0.0)

    def test_register_duplicate_rejected(self):
        with pytest.raises(KeyError):
            register_op("mean", MeanCompletion)


class TestFeatureBuilders:
    def test_handcrafted_covers_all_nodes(self, micro_dataset):
        builder = HandcraftedFeatures(micro_dataset, 8)
        h0 = builder()
        assert h0.shape == (5, 8)
        # attributed rows come from the projection of identity features
        assert np.abs(h0.data[2:]).sum() > 0

    def test_single_op_requires_known_name(self, micro_dataset):
        with pytest.raises(KeyError):
            SingleOpFeatures(micro_dataset, 8, "bogus")

    @pytest.mark.parametrize("op_name", DEFAULT_SPACE)
    def test_single_op_builders(self, micro_dataset, op_name):
        builder = SingleOpFeatures(micro_dataset, 8, op_name)
        assert builder().shape == (5, 8)

    def test_weighted_requires_weights(self, micro_dataset):
        builder = WeightedCompletionFeatures(micro_dataset, 8)
        with pytest.raises(RuntimeError):
            builder()

    def test_weighted_shape_validation(self, micro_dataset):
        builder = WeightedCompletionFeatures(micro_dataset, 8)
        with pytest.raises(ValueError):
            builder.set_weights(Tensor(np.ones((3, 4))))

    def test_one_hot_rows_match_single_op(self, micro_dataset):
        """One-hot weights on op k must equal running op k alone."""
        space = SearchSpace()
        weighted = WeightedCompletionFeatures(micro_dataset, 8, space=space)
        weights = np.zeros((2, 4))
        weights[:, space.index("mean")] = 1.0
        weighted.set_weights(Tensor(weights))
        mixed = weighted.completed().data
        alone = weighted.ops[space.index("mean")]().data
        np.testing.assert_allclose(mixed, alone)

    def test_mixture_is_convex_combination(self, micro_dataset):
        space = SearchSpace()
        builder = WeightedCompletionFeatures(micro_dataset, 8, space=space)
        builder.set_weights(Tensor(np.full((2, 4), 0.25)))
        mixed = builder.completed().data
        individual = np.stack([op().data for op in builder.ops])
        np.testing.assert_allclose(mixed, individual.mean(axis=0), rtol=1e-10)

    def test_fixed_assignment_validation(self, micro_dataset):
        with pytest.raises(ValueError):
            FixedAssignmentFeatures(micro_dataset, 8, np.array([0]))
        with pytest.raises(ValueError):
            FixedAssignmentFeatures(micro_dataset, 8, np.array([0, 9]))

    def test_fixed_assignment_random(self, micro_dataset):
        builder = FixedAssignmentFeatures.random(
            micro_dataset, 8, np.random.default_rng(0))
        assert builder().shape == (5, 8)
        assert builder.assignment.shape == (2,)
