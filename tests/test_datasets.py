"""Tests for the synthetic dataset generators and registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SCALES,
    SPECS,
    HeteroDataset,
    RelationSpec,
    SchemaSpec,
    Split,
    generate,
    get_dataset,
    stratified_split,
)


class TestSplit:
    def test_overlap_rejected(self):
        with pytest.raises(ValueError):
            Split(train=np.array([0, 1]), val=np.array([1]),
                  test=np.array([2]))

    def test_stratified_split_fractions(self):
        rng = np.random.default_rng(0)
        labels = np.repeat([0, 1, 2], 100)
        split = stratified_split(labels, (0.24, 0.06, 0.70), rng)
        assert split.sizes[0] == pytest.approx(72, abs=3)
        assert split.sizes[1] == pytest.approx(18, abs=3)
        # every class appears in every part
        for part in (split.train, split.val, split.test):
            assert set(labels[part]) == {0, 1, 2}

    def test_split_covers_everything(self):
        rng = np.random.default_rng(0)
        labels = np.repeat([0, 1], 50)
        split = stratified_split(labels, (0.24, 0.06, 0.70), rng)
        union = np.concatenate([split.train, split.val, split.test])
        assert sorted(union.tolist()) == list(range(100))


class TestRegistry:
    @pytest.mark.parametrize("name", ["dblp", "acm", "imdb", "lastfm"])
    def test_all_datasets_build(self, name):
        ds = get_dataset(name, scale="tiny", seed=0)
        assert ds.graph.num_nodes > 0
        assert ds.labels.shape[0] == ds.graph.num_nodes_of(ds.target_type)

    def test_unknown_name_and_scale(self):
        with pytest.raises(KeyError):
            get_dataset("unknown")
        with pytest.raises(KeyError):
            get_dataset("dblp", scale="galactic")

    def test_cache_returns_same_object(self):
        a = get_dataset("imdb", scale="tiny", seed=0)
        b = get_dataset("imdb", scale="tiny", seed=0)
        assert a is b

    def test_determinism_across_cache_bypass(self):
        a = get_dataset("acm", scale="tiny", seed=3, use_cache=False)
        b = get_dataset("acm", scale="tiny", seed=3, use_cache=False)
        np.testing.assert_array_equal(a.labels, b.labels)
        np.testing.assert_array_equal(
            a.graph.all_edges_global()[0], b.graph.all_edges_global()[0])

    def test_different_seeds_differ(self):
        a = get_dataset("acm", scale="tiny", seed=0, use_cache=False)
        b = get_dataset("acm", scale="tiny", seed=1, use_cache=False)
        assert not np.array_equal(a.graph.all_edges_global()[0],
                                  b.graph.all_edges_global()[0])

    def test_scaling_changes_counts(self):
        tiny = get_dataset("dblp", scale="tiny", seed=0)
        small = get_dataset("dblp", scale="small", seed=0)
        assert small.graph.num_nodes > tiny.graph.num_nodes


class TestSchemaFidelity:
    """The generated datasets must match the paper's Table I patterns."""

    def test_dblp_schema(self, dblp_tiny):
        assert dblp_tiny.target_type == "author"
        assert dblp_tiny.attributed_types == ["paper"]
        assert set(dblp_tiny.missing_types) == {"author", "term", "venue"}
        assert dblp_tiny.num_classes == 4

    def test_acm_schema(self, acm_tiny):
        assert acm_tiny.target_type == "paper"
        assert acm_tiny.attributed_types == ["paper"]
        assert acm_tiny.num_classes == 3
        relations = {rel[1] for rel in acm_tiny.graph.relations}
        assert "cites" in relations  # paper-paper self relation

    def test_imdb_schema(self, imdb_tiny):
        assert imdb_tiny.target_type == "movie"
        assert set(imdb_tiny.missing_types) == {"director", "actor", "keyword"}
        # the paper: 77% of IMDB nodes lack attributes
        assert 0.6 < imdb_tiny.attribute_missing_rate < 0.9

    def test_lastfm_schema(self, lastfm_tiny):
        assert lastfm_tiny.link_target == ("user", "listens-to", "artist")
        assert lastfm_tiny.attributed_types == ["artist"]

    def test_metapaths_start_at_target(self, imdb_tiny):
        assert all(mp[0] == mp[-1] for mp in imdb_tiny.metapaths)

    def test_missing_ids_partition(self, imdb_tiny):
        missing = set(imdb_tiny.missing_global_ids.tolist())
        attributed = set(imdb_tiny.attributed_global_ids.tolist())
        assert not (missing & attributed)
        assert len(missing) + len(attributed) == imdb_tiny.graph.num_nodes


class TestFeatures:
    def test_zero_filled_matrix(self, imdb_tiny):
        full = imdb_tiny.feature_matrix_zero_filled()
        assert full.shape == (imdb_tiny.graph.num_nodes, 64)
        np.testing.assert_allclose(full[imdb_tiny.missing_global_ids], 0.0)
        assert np.abs(full[imdb_tiny.attributed_global_ids]).sum() > 0

    def test_attributes_correlate_with_communities(self, imdb_tiny):
        """Same-community attributed nodes must be more similar on average."""
        feats = imdb_tiny.features["movie"]
        comm = imdb_tiny.latent_communities[imdb_tiny.graph.global_ids("movie")]
        normed = feats / (np.linalg.norm(feats, axis=1, keepdims=True) + 1e-12)
        sims = normed @ normed.T
        same = sims[comm[:, None] == comm[None, :]].mean()
        diff = sims[comm[:, None] != comm[None, :]].mean()
        assert same > diff + 0.05

    def test_handcrafted_onehot_override(self, imdb_tiny):
        ds = imdb_tiny.with_handcrafted_onehot(["actor"])
        assert "actor" in ds.attributed_types
        assert "actor" not in ds.missing_types
        assert ds.attribute_missing_rate < imdb_tiny.attribute_missing_rate
        # original untouched
        assert "actor" in imdb_tiny.missing_types

    def test_handcrafted_onehot_pads_small_types(self, dblp_tiny):
        ds = dblp_tiny.with_handcrafted_onehot(["venue"])
        venues = ds.features["venue"]
        assert venues.shape[1] == 64
        # identity block in the first columns
        count = dblp_tiny.graph.num_nodes_of("venue")
        np.testing.assert_allclose(venues[:, :count], np.eye(count))


class TestGeneratorMechanics:
    def _mini_spec(self, **overrides):
        defaults = dict(
            name="mini",
            node_counts={"a": 40, "b": 60},
            relations=(RelationSpec("a", "r", "b", edges_per_src=3.0),),
            target_type="a",
            attributed_types=("b",),
            num_classes=2,
            attribute_dim=8,
        )
        defaults.update(overrides)
        return SchemaSpec(**defaults)

    def test_every_source_has_an_edge(self):
        ds = generate(self._mini_spec(), seed=0)
        pairs = ds.graph.edges_local(("a", "r", "b"))
        assert set(pairs[0].tolist()) == set(range(40))

    def test_no_duplicate_edges(self):
        ds = generate(self._mini_spec(), seed=0)
        pairs = ds.graph.edges_local(("a", "r", "b"))
        keys = set(map(tuple, pairs.T.tolist()))
        assert len(keys) == pairs.shape[1]

    def test_assortative_wiring(self):
        spec = self._mini_spec(guest_fraction=0.0)
        ds = generate(spec, seed=0)
        pairs = ds.graph.edges_local(("a", "r", "b"))
        comm = ds.latent_communities
        src_comm = comm[ds.graph.to_global("a", pairs[0])]
        dst_comm = comm[ds.graph.to_global("b", pairs[1])]
        agreement = (src_comm == dst_comm).mean()
        assert agreement > 0.6  # assortative=0.85 default, minus collisions

    def test_guests_break_assortativity(self):
        low = generate(self._mini_spec(guest_fraction=0.0), seed=0)
        high = generate(self._mini_spec(guest_fraction=0.9), seed=0)

        def agreement(ds):
            pairs = ds.graph.edges_local(("a", "r", "b"))
            comm = ds.latent_communities
            return (comm[ds.graph.to_global("a", pairs[0])]
                    == comm[ds.graph.to_global("b", pairs[1])]).mean()

        assert agreement(low) > agreement(high)

    def test_label_noise_rate(self):
        spec = self._mini_spec(node_counts={"a": 2000, "b": 100},
                               label_noise=0.2)
        ds = generate(spec, seed=0)
        comm = ds.latent_communities[ds.graph.global_ids("a")]
        mismatch = (ds.labels != comm).mean()
        # flipped-to-same-class halves the visible rate; allow slack
        assert 0.05 < mismatch < 0.2

    def test_scaled_minimum(self):
        spec = SPECS["dblp"].scaled(0.001, minimum=6)
        assert min(spec.node_counts.values()) == 6
