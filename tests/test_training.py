"""Tests for metrics, early stopping, and both trainers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.models import build_model
from repro.tensor import Linear
from repro.training import (
    EarlyStopping,
    LinkPredConfig,
    LinkPredictionTask,
    LinkPredictionTrainer,
    NodeClassificationTrainer,
    TrainConfig,
    accuracy,
    macro_f1,
    mean_reciprocal_rank,
    micro_f1,
    roc_auc,
    run_repeats,
    set_seed,
)


class TestF1:
    def test_perfect_prediction(self):
        y = np.array([0, 1, 2, 0, 1])
        assert macro_f1(y, y, 3) == 1.0
        assert micro_f1(y, y, 3) == 1.0

    def test_known_values(self):
        y_true = np.array([0, 0, 1, 1])
        y_pred = np.array([0, 1, 1, 1])
        # class0: P=1, R=.5, F1=2/3 ; class1: P=2/3, R=1, F1=0.8
        assert macro_f1(y_true, y_pred, 2) == pytest.approx((2 / 3 + 0.8) / 2)
        # micro: P=R=3/4
        assert micro_f1(y_true, y_pred, 2) == pytest.approx(0.75)

    def test_absent_class_counts_as_zero(self):
        y_true = np.array([0, 0])
        y_pred = np.array([0, 0])
        assert macro_f1(y_true, y_pred, 2) == pytest.approx(0.5)

    def test_micro_equals_accuracy_single_label(self):
        rng = np.random.default_rng(0)
        y_true = rng.integers(0, 4, 50)
        y_pred = rng.integers(0, 4, 50)
        assert micro_f1(y_true, y_pred, 4) == pytest.approx(
            accuracy(y_true, y_pred))


class TestAUC:
    def test_perfect_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.9, 0.8, 0.2, 0.1])
        assert roc_auc(labels, scores) == 1.0

    def test_reversed_separation(self):
        labels = np.array([1, 1, 0, 0])
        scores = np.array([0.1, 0.2, 0.8, 0.9])
        assert roc_auc(labels, scores) == 0.0

    def test_random_is_half(self):
        rng = np.random.default_rng(0)
        labels = rng.integers(0, 2, 3000)
        scores = rng.random(3000)
        assert roc_auc(labels, scores) == pytest.approx(0.5, abs=0.05)

    def test_ties_average(self):
        labels = np.array([1, 0])
        scores = np.array([0.5, 0.5])
        assert roc_auc(labels, scores) == pytest.approx(0.5)

    def test_degenerate_single_class(self):
        assert roc_auc(np.array([1, 1]), np.array([0.1, 0.2])) == 0.5


class TestMRR:
    def test_positive_above_all_negatives(self):
        assert mean_reciprocal_rank(np.array([10.0]),
                                    np.array([1.0, 2.0])) == 1.0

    def test_rank_three(self):
        # two negatives higher → rank 3 → RR = 1/3
        assert mean_reciprocal_rank(np.array([1.0]),
                                    np.array([2.0, 3.0])) == pytest.approx(1 / 3)

    def test_tie_handling(self):
        # one tie: rank = 1 + 0 + 0.5 = 1.5
        assert mean_reciprocal_rank(np.array([2.0]),
                                    np.array([2.0])) == pytest.approx(1 / 1.5)

    def test_empty_positives(self):
        assert mean_reciprocal_rank(np.array([]), np.array([1.0])) == 0.0


class TestEarlyStopping:
    def test_stops_after_patience(self):
        module = Linear(2, 2)
        stopper = EarlyStopping(patience=2, modules=[module])
        assert not stopper.step(0.5, 0)
        assert not stopper.step(0.4, 1)
        assert stopper.step(0.3, 2)

    def test_restores_best_state(self):
        module = Linear(2, 2)
        stopper = EarlyStopping(patience=5, modules=[module])
        stopper.step(1.0, 0)
        best = module.state_dict()
        module.weight.data += 100.0
        stopper.step(0.5, 1)
        stopper.restore_best()
        np.testing.assert_array_equal(module.weight.data, best["weight"])

    def test_patience_validation(self):
        with pytest.raises(ValueError):
            EarlyStopping(patience=0, modules=[])


class TestNodeClassificationTrainer:
    def test_learns_above_chance(self, imdb_tiny):
        set_seed(0)
        model = build_model("gcn", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        trainer = NodeClassificationTrainer(
            model, features, imdb_tiny, TrainConfig(epochs=60, patience=15))
        result = trainer.train()
        chance = 1.0 / imdb_tiny.num_classes
        assert result.micro_f1 > chance + 0.15
        assert result.epochs_run <= 60
        assert result.train_seconds > 0
        assert len(result.history["train_loss"]) == result.epochs_run

    def test_loss_decreases(self, imdb_tiny):
        set_seed(0)
        model = build_model("mlp", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        trainer = NodeClassificationTrainer(
            model, features, imdb_tiny, TrainConfig(epochs=40, patience=40))
        result = trainer.train()
        losses = result.history["train_loss"]
        assert losses[-1] < losses[0]

    def test_run_repeats_aggregates(self, imdb_tiny):
        def factory(seed):
            model = build_model("mlp", imdb_tiny, hidden_dim=32, out_dim=32)
            features = HandcraftedFeatures(imdb_tiny, 32)
            return NodeClassificationTrainer(
                model, features, imdb_tiny,
                TrainConfig(epochs=10, patience=10)).train()

        stats = run_repeats(factory, repeats=2, base_seed=0)
        assert 0.0 <= stats["macro_f1_mean"] <= 1.0
        assert stats["macro_f1_std"] >= 0.0
        assert len(stats["results"]) == 2


class TestLinkPredictionTask:
    def test_masked_edges_removed_from_graph(self, lastfm_tiny):
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.2, seed=0)
        relation = lastfm_tiny.link_target
        original = lastfm_tiny.graph.num_edges(relation)
        remaining = task.train_graph_dataset.graph.num_edges(relation)
        masked = task.split.test_pos.shape[1] + task.split.val_pos.shape[1]
        assert remaining == original - masked

    def test_masked_edges_not_in_symmetric_adjacency(self, lastfm_tiny):
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.2, seed=0)
        adj = task.train_graph_dataset.graph.adjacency(symmetric=True)
        for src, dst in task.split.test_pos.T[:20]:
            assert adj[src, dst] == 0.0

    def test_negatives_are_not_positives(self, lastfm_tiny):
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        positives = set(zip(*lastfm_tiny.graph.edges_global(
            lastfm_tiny.link_target).tolist()))
        for src, dst in task.split.test_neg.T.tolist():
            assert (src, dst) not in positives

    def test_negative_types_match_relation(self, lastfm_tiny):
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        graph = lastfm_tiny.graph
        src_type, _, dst_type = lastfm_tiny.link_target
        idx = graph.node_type_index
        src_tid = graph.node_types.index(src_type)
        dst_tid = graph.node_types.index(dst_type)
        assert np.all(idx[task.split.test_neg[0]] == src_tid)
        assert np.all(idx[task.split.test_neg[1]] == dst_tid)

    def test_requires_link_target(self, acm_tiny):
        with pytest.raises(ValueError):
            LinkPredictionTask(acm_tiny)

    def test_mask_rate_validation(self, lastfm_tiny):
        with pytest.raises(ValueError):
            LinkPredictionTask(lastfm_tiny, mask_rate=1.5)


class TestLinkPredictionTrainer:
    def test_learns_above_chance(self, lastfm_tiny):
        set_seed(0)
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        model = build_model("gcn", task.train_graph_dataset)
        features = HandcraftedFeatures(task.train_graph_dataset, 64)
        trainer = LinkPredictionTrainer(
            model, features, task, LinkPredConfig(epochs=40, patience=10))
        result = trainer.train()
        assert result.roc_auc > 0.6
        assert 0.0 <= result.mrr <= 1.0

    def test_rejects_target_only_models(self, lastfm_tiny):
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        model = build_model("han", task.train_graph_dataset)
        features = HandcraftedFeatures(task.train_graph_dataset, 64)
        with pytest.raises(ValueError):
            LinkPredictionTrainer(model, features, task)
