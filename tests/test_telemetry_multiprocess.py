"""``merge_snapshots`` across REAL process boundaries (fork + spawn).

The in-process tests (``tests/test_telemetry.py``) prove that merging
thread shards equals a single registry.  The preforked serving tier
ships snapshots over pipes from *worker processes*, so these tests pin
the full journey: registry → ``snapshot()`` → JSON → process boundary →
``merge_snapshots`` — including histogram-bucket addition, label-set
union across shards, and both gauge aggregations — under both the
``fork`` and ``spawn`` start methods.
"""

from __future__ import annotations

import json
import multiprocessing

import pytest

import _telemetry_mp_helpers as helpers
from repro.telemetry import merge_snapshots

NUM_SHARDS = 3

START_METHODS = [
    pytest.param(method, marks=() if method
                 in multiprocessing.get_all_start_methods()
                 else pytest.mark.skip(f"no {method} start method"))
    for method in ("fork", "spawn")
]


def _collect_shards(method: str):
    """Run NUM_SHARDS child processes; return snapshots in shard order."""
    ctx = multiprocessing.get_context(method)
    queue = ctx.Queue()
    procs = [ctx.Process(target=helpers.emit_snapshot, args=(queue, index))
             for index in range(NUM_SHARDS)]
    for proc in procs:
        proc.start()
    payloads = [json.loads(queue.get(timeout=120))
                for _ in range(NUM_SHARDS)]
    for proc in procs:
        proc.join(timeout=120)
        assert proc.exitcode == 0
    payloads.sort(key=lambda entry: entry["shard"])
    return [entry["snapshot"] for entry in payloads]


@pytest.mark.parametrize("method", START_METHODS)
class TestAcrossProcessBoundaries:
    def test_snapshot_survives_the_process_boundary_intact(self, method):
        shards = _collect_shards(method)
        expected = [helpers.build_shard_registry(index).snapshot()
                    for index in range(NUM_SHARDS)]
        assert shards == expected

    def test_merge_equals_in_process_merge(self, method):
        shards = _collect_shards(method)
        in_process = [helpers.build_shard_registry(index).snapshot()
                      for index in range(NUM_SHARDS)]
        assert merge_snapshots(shards) == merge_snapshots(in_process)

    def test_counter_labels_union_and_sum(self, method):
        merged = merge_snapshots(_collect_shards(method))
        samples = merged["mp_events_total"]["samples"]
        # overlapping label value: contributions add across processes
        assert samples[json.dumps(["shared"])] == sum(
            index + 1 for index in range(NUM_SHARDS))
        # disjoint label values: every shard's private label survives
        for index in range(NUM_SHARDS):
            assert samples[json.dumps([f"only_{index}"])] == 2

    def test_histogram_buckets_add_elementwise(self, method):
        merged = merge_snapshots(_collect_shards(method))
        entry = merged["mp_latency_seconds"]
        assert entry["buckets"] == list(helpers.BUCKETS)
        bounds = list(helpers.BUCKETS)
        for route in helpers.ROUTES:
            wanted = [0] * (len(bounds) + 1)
            total = 0.0
            count = 0
            for index in range(NUM_SHARDS):
                for value, value_route in helpers.shard_observations(index):
                    if value_route != route:
                        continue
                    count += 1
                    total += value
                    slot = next((i for i, bound in enumerate(bounds)
                                 if value <= bound), len(bounds))
                    wanted[slot] += 1
            sample = entry["samples"][json.dumps([route])]
            assert sample["counts"] == wanted
            assert sample["count"] == count
            assert sample["sum"] == pytest.approx(total)

    def test_gauge_aggregations(self, method):
        merged = merge_snapshots(_collect_shards(method))
        max_samples = merged["mp_depth_max"]["samples"]
        assert max_samples[json.dumps([])] == max(
            index * 3 for index in range(NUM_SHARDS))
        sum_samples = merged["mp_inflight"]["samples"]
        assert sum_samples[json.dumps([])] == sum(
            index + 1 for index in range(NUM_SHARDS))
