"""The engine dtype policy: float32 fast mode end to end.

Covers the three contracts of :mod:`repro.tensor.dtype`:

* ``set_default_dtype`` switches/restores the allocation dtype of
  tensors, initializers, sparse matrices and RNG draws;
* every differentiable op in ``repro.tensor.functional`` and
  ``repro.tensor.sparse`` passes a float32 gradcheck at the relaxed
  per-dtype tolerances (both unfused and fused implementations);
* a float32-trained :class:`~repro.serving.ModelBundle` survives an
  export/load round trip with identical predictions.
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np
import pytest

from repro.tensor import (
    SparseTensor,
    Tensor,
    addmm,
    attention_aggregate,
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    fused_kernels,
    get_default_dtype,
    gradcheck,
    head_dot,
    init,
    is_fast_dtype,
    l2_normalize,
    log_softmax,
    manual_seed,
    nll_loss,
    segment_mean,
    segment_softmax,
    segment_sum,
    segment_weighted_mean,
    set_default_dtype,
    softmax,
    spmm,
    weighted_spmm,
)
from repro.tensor.functional import embedding, layer_norm, one_hot


@pytest.fixture(autouse=True)
def _restore_dtype():
    previous = get_default_dtype()
    yield
    set_default_dtype(previous)


@pytest.fixture
def float32():
    with set_default_dtype("float32"):
        yield


def _t(shape, seed=0, scale=1.0):
    data = np.random.default_rng(seed).normal(size=shape) * scale
    return Tensor(data, requires_grad=True)


class TestPolicy:
    def test_default_is_float64(self):
        assert get_default_dtype() == np.float64
        assert not is_fast_dtype()
        assert Tensor([1.0]).dtype == np.float64

    def test_context_manager_switches_and_restores(self):
        with set_default_dtype("float32"):
            assert is_fast_dtype()
            assert Tensor([1.0]).dtype == np.float32
        assert get_default_dtype() == np.float64

    def test_plain_call_switches_until_reset(self):
        set_default_dtype(np.float32)
        assert Tensor([1.0]).dtype == np.float32
        set_default_dtype("float64")
        assert Tensor([1.0]).dtype == np.float64

    def test_rejects_non_float_dtypes(self):
        with pytest.raises(ValueError):
            set_default_dtype(np.int64)
        with pytest.raises(ValueError):
            set_default_dtype("float16")

    def test_initializers_follow_policy(self, float32):
        for array in (init.zeros((3,)), init.ones((3,)),
                      init.constant((3,), 2.0), init.uniform((3,)),
                      init.normal((3,)), init.xavier_uniform((3, 4)),
                      init.xavier_normal((3, 4)),
                      init.kaiming_uniform((3, 4)),
                      init.kaiming_normal((3, 4)),
                      one_hot(np.array([0, 1]), 3)):
            assert array.dtype == np.float32

    def test_sparse_and_ops_follow_policy(self, float32):
        mat = SparseTensor.from_dense(np.eye(3))
        assert mat.values.dtype == np.float32
        assert mat.row_normalize().values.dtype == np.float32
        out = spmm(mat, Tensor(np.ones((3, 2))))
        assert out.dtype == np.float32

    def test_arithmetic_stays_float32(self, float32):
        a, b = Tensor(np.ones(4)), Tensor(np.ones(4))
        assert (a + b).dtype == np.float32
        assert (a * b).dtype == np.float32
        assert (a @ Tensor(np.ones((4, 2)))).dtype == np.float32
        assert softmax(a).dtype == np.float32

    def test_mixed_precision_input_cast_on_construction(self, float32):
        assert Tensor(np.ones(3, dtype=np.float64)).dtype == np.float32

    def test_graph_caches_keyed_by_dtype(self):
        # switching profiles must never serve a stale-precision operator
        # from the graph's adjacency caches (reference stays float64 even
        # after a float32 run touched the same graph)
        from repro.datasets import get_dataset

        graph = get_dataset("imdb", scale="tiny", seed=3).graph
        with set_default_dtype("float32"):
            assert graph.adjacency().dtype == np.float32
            assert graph.normalized_adjacency().values.dtype == np.float32
            assert graph.adjacency_sparse().values.dtype == np.float32
        assert graph.adjacency().dtype == np.float64
        assert graph.normalized_adjacency().values.dtype == np.float64
        assert graph.adjacency_sparse().values.dtype == np.float64


def _gradcheck_all_ops():
    """(name, fn, inputs-factory) for every differentiable op under test."""
    seg = np.array([0, 0, 1, 2, 2, 2])
    targets = np.array([1, 0, 2, 1, 0])
    edge_src = np.array([0, 1, 2, 3, 0, 2])
    edge_dst = np.array([1, 1, 2, 0, 3, 3])

    def dropout_deterministic(x):
        manual_seed(7)  # numerical_gradient re-evaluates; fix the mask
        return dropout(x, 0.4, training=True)

    pattern = None  # built lazily inside the float32 context

    def get_pattern():
        nonlocal pattern
        if pattern is None:
            pattern = SparseTensor.from_edges(
                np.array([0, 0, 1, 2, 3]), np.array([1, 2, 0, 3, 2]),
                shape=(4, 4))
        return pattern

    return [
        ("softmax", lambda x: softmax(x), lambda: [_t((5, 4))]),
        ("log_softmax", lambda x: log_softmax(x), lambda: [_t((5, 4))]),
        ("cross_entropy",
         lambda x: cross_entropy(x, targets), lambda: [_t((5, 3))]),
        ("cross_entropy_sum",
         lambda x: cross_entropy(x, targets, reduction="sum"),
         lambda: [_t((5, 3))]),
        ("cross_entropy_none",
         lambda x: cross_entropy(x, targets, reduction="none"),
         lambda: [_t((5, 3))]),
        ("nll_loss",
         lambda x: nll_loss(log_softmax(x), targets), lambda: [_t((5, 3))]),
        ("bce_with_logits",
         lambda x: binary_cross_entropy_with_logits(
             x, np.array([1.0, 0, 1, 0, 1])),
         lambda: [_t((5,))]),
        ("addmm", lambda x, w, b: addmm(x, w, b),
         lambda: [_t((4, 3)), _t((3, 2), seed=1), _t((2,), seed=2)]),
        ("dropout", dropout_deterministic, lambda: [_t((6, 3))]),
        ("l2_normalize", lambda x: l2_normalize(x), lambda: [_t((4, 3))]),
        ("layer_norm", lambda x, w, b: layer_norm(x, w, b),
         lambda: [_t((4, 3)), _t((3,), seed=1), _t((3,), seed=2)]),
        ("segment_sum", lambda x: segment_sum(x, seg, 3),
         lambda: [_t((6, 2))]),
        ("segment_mean", lambda x: segment_mean(x, seg, 3),
         lambda: [_t((6, 2))]),
        ("segment_softmax", lambda x: segment_softmax(x, seg, 3),
         lambda: [_t((6, 2))]),
        ("segment_weighted_mean",
         lambda v, w: segment_weighted_mean(v, w, seg, 3),
         lambda: [_t((6, 2)), Tensor(
             np.abs(np.random.default_rng(3).normal(size=(6, 2))) + 0.1,
             requires_grad=True)]),
        ("head_dot", lambda x, v: head_dot(x, v),
         lambda: [_t((5, 2, 3)), _t((2, 3), seed=1)]),
        ("attention_aggregate",
         lambda a, x: attention_aggregate(a, x, edge_src, edge_dst, 4),
         lambda: [_t((6, 2)), _t((4, 2, 3), seed=1)]),
        ("embedding",
         lambda table: embedding(table, np.array([0, 2, 2, 1])),
         lambda: [_t((3, 4))]),
        ("spmm", lambda x: spmm(get_pattern(), x), lambda: [_t((4, 3))]),
        ("weighted_spmm",
         lambda v, x: weighted_spmm(get_pattern(), v, x),
         lambda: [_t((5,)), _t((4, 3), seed=1)]),
        ("weighted_spmm_multihead",
         lambda v, x: weighted_spmm(get_pattern(), v, x),
         lambda: [_t((5, 2)), _t((4, 2, 3), seed=1)]),
    ]


@pytest.mark.parametrize("fused", [False, True],
                         ids=["unfused", "fused"])
@pytest.mark.parametrize("name,fn,make_inputs",
                         [(case[0], case[1], case[2])
                          for case in _gradcheck_all_ops()],
                         ids=[case[0] for case in _gradcheck_all_ops()])
def test_float32_gradcheck(name, fn, make_inputs, fused, float32):
    with fused_kernels(fused):
        inputs = make_inputs()
        for tensor in inputs:
            assert tensor.dtype == np.float32
        assert gradcheck(fn, inputs)


def test_float64_gradcheck_stays_tight():
    # the relaxed tolerances apply only when a float32 input is present
    inputs = [_t((4, 3))]
    assert inputs[0].dtype == np.float64
    assert gradcheck(lambda x: softmax(x), inputs)


def test_numerical_gradient_defaults_eps_per_dtype(float32):
    # a 1e-6 step is below float32 spacing for values ≳ 1; the default
    # must pick a float32-sized step or the difference rounds away
    from repro.tensor import numerical_gradient

    x = Tensor(np.full(3, 8.0), requires_grad=True)
    assert x.dtype == np.float32
    numeric = numerical_gradient(lambda t: t * t, [x], 0)
    np.testing.assert_allclose(numeric, 16.0, rtol=1e-2)


class TestFloat32BundleRoundTrip:
    def test_export_load_serve_identical_predictions(self, float32):
        from repro.completion import FixedAssignmentFeatures, SearchSpace
        from repro.datasets import get_dataset
        from repro.models import build_model
        from repro.serving import (DatasetSpec, InferenceEngine, ModelBundle,
                                   build_bundle)
        from repro.training import (NodeClassificationTrainer, TrainConfig,
                                    set_seed)

        set_seed(0)
        dataset = get_dataset("imdb", scale="tiny", seed=0)
        space = SearchSpace()
        assignment = np.random.default_rng(0).integers(
            0, len(space), size=dataset.missing_global_ids.shape[0])
        features = FixedAssignmentFeatures(dataset, 16, assignment,
                                           space=space)
        model = build_model("gcn", dataset, hidden_dim=16, out_dim=16)
        NodeClassificationTrainer(model, features, dataset,
                                  TrainConfig(epochs=2, patience=5)).train()
        # the trained parameters really are single precision
        assert all(p.dtype == np.float32 for p in model.parameters())

        bundle = build_bundle(dataset, DatasetSpec("imdb", "tiny", 0), "gcn",
                              model, features, hidden_dim=16, out_dim=16)
        with tempfile.TemporaryDirectory() as tmp:
            path = bundle.save(Path(tmp) / "bundle_f32.npz")
            engine_direct = InferenceEngine(bundle)
            engine_loaded = InferenceEngine(ModelBundle.load(path))
            ids = np.arange(min(16, dataset.split.test.shape[0]))
            direct = engine_direct.predict_logits(ids)
            loaded = engine_loaded.predict_logits(ids)
        assert direct.dtype == np.float32
        np.testing.assert_array_equal(direct, loaded)
