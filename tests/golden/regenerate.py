"""Regenerate the golden report fixture after an *intentional* report change.

    PYTHONPATH=src python tests/golden/regenerate.py

Rewrites ``report_fixture.html`` from the same synthetic journal
``tests/test_runs.py::TestReport::test_golden_report_is_stable`` builds.
Review the HTML diff before committing — the golden test exists to catch
*unintentional* drift in the report's bytes.
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

TESTS_DIR = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(TESTS_DIR))

from test_runs import write_synthetic_journal  # noqa: E402

from repro.runs import render_report  # noqa: E402


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        journal = Path(tmp) / "fixture.jsonl"
        write_synthetic_journal(
            journal, seed=3, trials=4,
            stopped={"trial_id": 3, "reason": "plateau",
                     "stopper": "progress"})
        html = render_report(journal)
    out = Path(__file__).parent / "report_fixture.html"
    out.write_text(html, encoding="utf-8")
    print(f"wrote {out} ({len(html)} bytes)")


if __name__ == "__main__":
    main()
