"""Shared fixtures: tiny datasets and deterministic seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import get_dataset
from repro.graph import HeteroGraph
from repro.training import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_seed(1234)
    yield


@pytest.fixture(scope="session")
def imdb_tiny():
    return get_dataset("imdb", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def dblp_tiny():
    return get_dataset("dblp", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def acm_tiny():
    return get_dataset("acm", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def lastfm_tiny():
    return get_dataset("lastfm", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def tiny_bundle(imdb_tiny, tmp_path_factory):
    """A quickly-trained servable bundle + its in-process reference.

    Shared by the serving tests: a GCN on tiny IMDB with a fixed mixed
    completion assignment, trained for a few epochs, exported to disk.
    Returns the bundle, its path, and the reference predictions of the
    in-process trained model (the exact-match oracle).
    """
    import numpy as np

    from repro.completion import FixedAssignmentFeatures, SearchSpace
    from repro.models import build_model
    from repro.serving import DatasetSpec, build_bundle
    from repro.tensor import no_grad
    from repro.training import NodeClassificationTrainer, TrainConfig

    set_seed(7)
    dataset = imdb_tiny
    space = SearchSpace()
    rng = np.random.default_rng(7)
    assignment = rng.integers(0, len(space),
                              size=dataset.missing_global_ids.shape[0])
    features = FixedAssignmentFeatures(dataset, 32, assignment, space=space)
    model = build_model("gcn", dataset, hidden_dim=32, out_dim=32)
    result = NodeClassificationTrainer(
        model, features, dataset, TrainConfig(epochs=4, patience=10)).train()
    bundle = build_bundle(dataset, DatasetSpec("imdb", "tiny", 0), "gcn",
                          model, features, hidden_dim=32, out_dim=32,
                          metrics={"macro_f1": result.macro_f1})
    path = tmp_path_factory.mktemp("serving") / "bundle.npz"
    bundle.save(path)
    model.eval()
    features.eval()
    with no_grad():
        reference = np.argmax(model(features()).data, axis=-1)
    return {"bundle": bundle, "path": path, "reference": reference,
            "dataset": dataset}


@pytest.fixture()
def toy_graph() -> HeteroGraph:
    """A hand-built 3-type graph small enough to verify by eye.

    movies: 0..3, actors: 0..2, tags: 0..1
    movie-actor: (0,0) (0,1) (1,1) (2,2) (3,2)
    movie-tag:   (0,0) (1,0) (2,1) (3,1)
    """
    edges = {
        ("movie", "stars", "actor"): np.array([[0, 0, 1, 2, 3],
                                               [0, 1, 1, 2, 2]]),
        ("movie", "tagged", "tag"): np.array([[0, 1, 2, 3],
                                              [0, 0, 1, 1]]),
    }
    graph = HeteroGraph({"movie": 4, "actor": 3, "tag": 2}, edges)
    graph.add_reverse_relations()
    return graph
