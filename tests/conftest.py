"""Shared fixtures: tiny datasets and deterministic seeding."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import get_dataset
from repro.graph import HeteroGraph
from repro.training import set_seed


@pytest.fixture(autouse=True)
def _seed_everything():
    set_seed(1234)
    yield


@pytest.fixture(scope="session")
def imdb_tiny():
    return get_dataset("imdb", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def dblp_tiny():
    return get_dataset("dblp", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def acm_tiny():
    return get_dataset("acm", scale="tiny", seed=0)


@pytest.fixture(scope="session")
def lastfm_tiny():
    return get_dataset("lastfm", scale="tiny", seed=0)


@pytest.fixture()
def toy_graph() -> HeteroGraph:
    """A hand-built 3-type graph small enough to verify by eye.

    movies: 0..3, actors: 0..2, tags: 0..1
    movie-actor: (0,0) (0,1) (1,1) (2,2) (3,2)
    movie-tag:   (0,0) (1,0) (2,1) (3,1)
    """
    edges = {
        ("movie", "stars", "actor"): np.array([[0, 0, 1, 2, 3],
                                               [0, 1, 1, 2, 2]]),
        ("movie", "tagged", "tag"): np.array([[0, 1, 2, 3],
                                              [0, 0, 1, 1]]),
    }
    graph = HeteroGraph({"movie": 4, "actor": 3, "tag": 2}, edges)
    graph.add_reverse_relations()
    return graph
