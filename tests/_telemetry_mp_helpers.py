"""Worker functions for ``tests/test_telemetry_multiprocess.py``.

Kept at module level in an importable module (not inside a test class)
so multiprocessing's *spawn* start method can re-import them by name in
a fresh interpreter; the *fork* start method inherits them either way.
"""

from __future__ import annotations

import json

#: deliberately tiny bucket ladder so the deterministic observations
#: below land in several different buckets (including the +Inf tail)
BUCKETS = (0.005, 0.05, 0.5)

ROUTES = ("predict", "onboard")

OBSERVATIONS_PER_SHARD = 10


def shard_observations(shard_index: int):
    """Deterministic per-shard ``(value, route)`` observations."""
    return [((shard_index + 1) * (step + 1) / 20.0, ROUTES[step % 2])
            for step in range(OBSERVATIONS_PER_SHARD)]


def build_shard_registry(shard_index: int):
    """One worker's private registry with deterministic traffic.

    Exercises all three instrument kinds, overlapping AND disjoint label
    values across shards, and both gauge aggregations the tier uses.
    """
    from repro.telemetry import MetricsRegistry

    registry = MetricsRegistry()
    events = registry.counter("mp_events_total", "events", labels=("kind",))
    latency = registry.histogram("mp_latency_seconds", "latency",
                                 labels=("route",), buckets=BUCKETS)
    depth = registry.gauge("mp_depth_max", "peak depth", aggregation="max")
    inflight = registry.gauge("mp_inflight", "summed inflight")
    events.inc(shard_index + 1, kind="shared")
    events.inc(2, kind=f"only_{shard_index}")
    for value, route in shard_observations(shard_index):
        latency.observe(value, route=route)
    depth.set(float(shard_index * 3))
    inflight.set(float(shard_index + 1))
    return registry


def emit_snapshot(queue, shard_index: int) -> None:
    """Child-process entry point: snapshot → JSON → queue."""
    registry = build_shard_registry(shard_index)
    queue.put(json.dumps({"shard": shard_index,
                          "snapshot": registry.snapshot()}))
