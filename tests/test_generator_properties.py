"""Hypothesis property tests for the dataset generator and graph toolkit."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.generator import RelationSpec, SchemaSpec, generate
from repro.graph import (
    HeteroGraph,
    row_normalized_adjacency,
    sym_normalized_adjacency,
)

SCHEMA_STRATEGY = st.fixed_dictionaries({
    "n_a": st.integers(8, 40),
    "n_b": st.integers(8, 40),
    "edges_per_src": st.floats(1.0, 4.0),
    "assortative": st.floats(0.0, 1.0),
    "guest_fraction": st.floats(0.0, 0.5),
    "num_classes": st.integers(2, 4),
    "seed": st.integers(0, 1000),
})


def _build(params) -> SchemaSpec:
    return SchemaSpec(
        name="prop",
        node_counts={"a": params["n_a"], "b": params["n_b"]},
        relations=(RelationSpec("a", "r", "b",
                                edges_per_src=params["edges_per_src"],
                                assortative=params["assortative"]),),
        target_type="a",
        attributed_types=("b",),
        num_classes=params["num_classes"],
        attribute_dim=8,
        guest_fraction=params["guest_fraction"],
    )


@given(SCHEMA_STRATEGY)
@settings(max_examples=25, deadline=None)
def test_generator_invariants(params):
    dataset = generate(_build(params), seed=params["seed"])
    graph = dataset.graph

    # every node id valid, every source covered
    pairs = graph.edges_local(("a", "r", "b"))
    assert pairs[0].max() < params["n_a"]
    assert pairs[1].max() < params["n_b"]
    assert set(pairs[0].tolist()) == set(range(params["n_a"]))

    # labels in range, splits partition the target nodes
    assert dataset.labels.min() >= 0
    assert dataset.labels.max() < params["num_classes"]
    split = dataset.split
    union = np.concatenate([split.train, split.val, split.test])
    assert sorted(union.tolist()) == list(range(params["n_a"]))

    # attributes non-negative, only on declared types
    assert dataset.features["a"] is None
    assert np.all(dataset.features["b"] >= 0)

    # adjacency symmetric and loop-free
    adj = graph.adjacency(symmetric=True)
    assert (adj != adj.T).nnz == 0
    assert adj.diagonal().sum() == 0


@given(SCHEMA_STRATEGY)
@settings(max_examples=15, deadline=None)
def test_normalization_invariants_on_generated_graphs(params):
    dataset = generate(_build(params), seed=params["seed"])
    adj = dataset.graph.adjacency()

    rn = row_normalized_adjacency(adj)
    row_sums = np.asarray(rn.sum(axis=1)).ravel()
    degrees = np.asarray(adj.sum(axis=1)).ravel()
    np.testing.assert_allclose(row_sums[degrees > 0], 1.0, rtol=1e-10)
    np.testing.assert_allclose(row_sums[degrees == 0], 0.0)

    sym = sym_normalized_adjacency(adj)
    assert abs(sym - sym.T).nnz == 0
    # entries bounded by 1 (self loops give exactly deg^-1 ≤ 1)
    assert sym.data.max() <= 1.0 + 1e-12


@given(st.integers(2, 30), st.integers(0, 100))
@settings(max_examples=20, deadline=None)
def test_missing_rate_matches_declared_types(n_nodes, seed):
    spec = SchemaSpec(
        name="prop2",
        node_counts={"x": n_nodes, "y": n_nodes},
        relations=(RelationSpec("x", "r", "y", edges_per_src=2.0),),
        target_type="x",
        attributed_types=("y",),
        num_classes=2,
        attribute_dim=4,
    )
    dataset = generate(spec, seed=seed)
    assert dataset.attribute_missing_rate == pytest.approx(0.5)
    assert dataset.missing_global_ids.shape[0] == n_nodes
