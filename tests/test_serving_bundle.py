"""ModelBundle artifacts: round-trip guarantees and the export pipeline."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest

from repro.core import AutoACConfig, run_autoac
from repro.serving import (
    BUNDLE_FORMAT_VERSION,
    DatasetSpec,
    InferenceEngine,
    ModelBundle,
    bundle_from_result,
    default_label_names,
)
from repro.tensor import no_grad
from repro.training import TrainConfig, set_seed

SRC = Path(__file__).resolve().parent.parent / "src"


class TestRoundTrip:
    def test_manifest_fields_survive(self, tiny_bundle):
        loaded = ModelBundle.load(tiny_bundle["path"])
        original = tiny_bundle["bundle"]
        assert loaded.dataset == original.dataset
        assert loaded.model_name == original.model_name
        assert loaded.hidden_dim == original.hidden_dim
        assert loaded.out_dim == original.out_dim
        assert loaded.op_names == original.op_names
        assert loaded.target_type == original.target_type
        assert loaded.num_classes == original.num_classes
        assert loaded.label_names == original.label_names
        assert loaded.metrics == pytest.approx(original.metrics)

    def test_arrays_survive_exactly(self, tiny_bundle):
        loaded = ModelBundle.load(tiny_bundle["path"])
        original = tiny_bundle["bundle"]
        for name in ("assignment", "cluster_labels", "completed"):
            saved, reread = getattr(original, name), getattr(loaded, name)
            assert reread.dtype == saved.dtype
            assert reread.shape == saved.shape
            np.testing.assert_array_equal(reread, saved)

    def test_state_dicts_survive_exactly(self, tiny_bundle):
        loaded = ModelBundle.load(tiny_bundle["path"])
        original = tiny_bundle["bundle"]
        for attribute in ("model_state", "features_state"):
            saved, reread = getattr(original, attribute), getattr(loaded, attribute)
            assert set(saved) == set(reread)
            for key in saved:
                assert reread[key].dtype == saved[key].dtype
                assert reread[key].shape == saved[key].shape
                np.testing.assert_array_equal(reread[key], saved[key])

    def test_format_version_recorded(self, tiny_bundle):
        with np.load(tiny_bundle["path"]) as archive:
            assert int(archive["format_version"][0]) == BUNDLE_FORMAT_VERSION
            manifest = json.loads(bytes(archive["manifest_json"].tobytes()))
        assert manifest["kind"] == "autoac-model-bundle"
        assert manifest["format_version"] == BUNDLE_FORMAT_VERSION

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            ModelBundle.load(tmp_path / "absent.npz")

    def test_wrong_archive_rejected_with_value_error(self, tmp_path):
        path = tmp_path / "not_a_bundle.npz"
        np.savez(path, whatever=np.arange(3))
        with pytest.raises(ValueError, match="missing arrays"):
            ModelBundle.load(path)

    def test_future_format_version_rejected(self, tiny_bundle, tmp_path):
        with np.load(tiny_bundle["path"]) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["format_version"] = np.array([BUNDLE_FORMAT_VERSION + 1])
        path = tmp_path / "future.npz"
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="format_version"):
            ModelBundle.load(path)

    def test_default_label_names(self):
        assert default_label_names(3) == ["class_0", "class_1", "class_2"]


class TestInstantiate:
    def test_instantiated_modules_match_bundle_weights(self, tiny_bundle):
        loaded = ModelBundle.load(tiny_bundle["path"])
        _, model, features = loaded.instantiate(tiny_bundle["dataset"])
        for key, value in model.state_dict().items():
            np.testing.assert_array_equal(value, loaded.model_state[key])
        for key, value in features.state_dict().items():
            np.testing.assert_array_equal(value, loaded.features_state[key])
        assert not model.training and not features.training


class TestEndToEnd:
    """The acceptance path: search → retrain → export → fresh predict."""

    @pytest.fixture(scope="class")
    def pipeline_bundle_path(self, imdb_tiny, tmp_path_factory):
        set_seed(3)
        config = AutoACConfig(
            search_epochs=4, patience=10, num_clusters=3,
            hidden_dim=32, out_dim=32,
            retrain=TrainConfig(epochs=4, patience=10))
        result = run_autoac(imdb_tiny, "gcn", config, seed=3,
                            keep_artifacts=True)
        bundle = bundle_from_result(result, imdb_tiny,
                                    DatasetSpec("imdb", "tiny", 0), "gcn",
                                    config)
        path = tmp_path_factory.mktemp("e2e") / "pipeline_bundle.npz"
        bundle.save(path)
        model = result.artifacts.model
        features = result.artifacts.features
        model.eval()
        features.eval()
        with no_grad():
            reference = np.argmax(model(features()).data, axis=-1)
        return {"path": path, "reference": reference}

    def test_same_process_engine_matches_exactly(self, pipeline_bundle_path):
        engine = InferenceEngine.from_path(pipeline_bundle_path["path"])
        n_target = engine.dataset.graph.num_nodes_of(engine.bundle.target_type)
        predictions = engine.predict(np.arange(n_target))
        np.testing.assert_array_equal(predictions,
                                      pipeline_bundle_path["reference"])

    def test_fresh_process_engine_matches_exactly(self, pipeline_bundle_path):
        """A brand-new interpreter must reproduce the retrained model."""
        script = (
            "import json, sys, numpy as np\n"
            "from repro.serving import InferenceEngine\n"
            "engine = InferenceEngine.from_path(sys.argv[1])\n"
            "n = engine.dataset.graph.num_nodes_of(engine.bundle.target_type)\n"
            "print(json.dumps(engine.predict(np.arange(n)).tolist()))\n")
        completed = subprocess.run(
            [sys.executable, "-c", script,
             str(pipeline_bundle_path["path"])],
            capture_output=True, text=True, timeout=300,
            env={**os.environ, "PYTHONPATH": str(SRC)})
        assert completed.returncode == 0, completed.stderr
        predictions = np.array(json.loads(completed.stdout.strip()))
        np.testing.assert_array_equal(predictions,
                                      pipeline_bundle_path["reference"])

    def test_bundle_from_result_requires_artifacts(self, imdb_tiny,
                                                   pipeline_bundle_path):
        class Hollow:
            artifacts = None

        with pytest.raises(ValueError, match="keep_artifacts"):
            bundle_from_result(Hollow(), imdb_tiny,
                               DatasetSpec("imdb", "tiny", 0), "gcn",
                               AutoACConfig())


class TestMmapLoad:
    """``ModelBundle.load(mmap_mode="r")``: zero-copy page sharing.

    The compressed archive is unpacked once into a ``<bundle>.npz.mmap/``
    sidecar of raw ``.npy`` files; every load after that maps the same
    files, so a second load shares pages with the first instead of
    allocating a second full-size copy — the property the preforked
    serving tier relies on.
    """

    def test_mmap_load_matches_eager_load_exactly(self, tiny_bundle):
        eager = ModelBundle.load(tiny_bundle["path"])
        mapped = ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        for name in ("assignment", "cluster_labels", "completed"):
            np.testing.assert_array_equal(np.asarray(getattr(mapped, name)),
                                          getattr(eager, name))
            assert getattr(mapped, name).dtype == getattr(eager, name).dtype
        for attribute in ("model_state", "features_state"):
            saved, reread = getattr(eager, attribute), getattr(mapped, attribute)
            assert set(saved) == set(reread)
            for key in saved:
                np.testing.assert_array_equal(np.asarray(reread[key]),
                                              saved[key])
        assert mapped.manifest() == eager.manifest()

    def test_second_load_shares_pages_not_a_second_allocation(self,
                                                              tiny_bundle):
        first = ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        second = ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        for bundle in (first, second):
            assert isinstance(bundle.completed, np.memmap)
            assert not bundle.completed.flags.writeable
        # both loads map the SAME backing file (one physical copy of the
        # pages, shared by the OS) rather than owning private buffers
        assert Path(first.completed.filename).samefile(
            Path(second.completed.filename))
        for key in first.model_state:
            if first.model_state[key].size == 0:
                continue
            assert isinstance(first.model_state[key], np.memmap)
            assert Path(first.model_state[key].filename).samefile(
                Path(second.model_state[key].filename))

    def test_unpack_happens_once(self, tiny_bundle):
        ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        cache = ModelBundle._mmap_cache_dir(Path(tiny_bundle["path"]))
        probe = cache / "arrays" / "completed.npy"
        stamp_before = probe.stat().st_mtime_ns
        ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        assert probe.stat().st_mtime_ns == stamp_before

    def test_replaced_archive_rebuilds_the_cache(self, tiny_bundle, tmp_path):
        path = tmp_path / "replace_me.npz"
        bundle = tiny_bundle["bundle"]
        bundle.save(path)
        mapped = ModelBundle.load(path, mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(mapped.completed),
                                      bundle.completed)
        # replace the archive with different contents at the same path
        import dataclasses
        changed = dataclasses.replace(
            bundle, completed=bundle.completed + 1.0)
        changed.save(path)
        remapped = ModelBundle.load(path, mmap_mode="r")
        np.testing.assert_array_equal(np.asarray(remapped.completed),
                                      bundle.completed + 1.0)

    def test_mmap_engine_predictions_match_eager_engine(self, tiny_bundle):
        mapped = ModelBundle.load(tiny_bundle["path"], mmap_mode="r")
        engine = InferenceEngine(mapped, dataset=tiny_bundle["dataset"])
        n = engine.dataset.graph.num_nodes_of(mapped.target_type)
        np.testing.assert_array_equal(engine.predict(np.arange(n)),
                                      tiny_bundle["reference"])

    def test_invalid_mmap_mode_rejected(self, tiny_bundle):
        with pytest.raises(ValueError, match="mmap_mode"):
            ModelBundle.load(tiny_bundle["path"], mmap_mode="r+")

    def test_torn_archive_rejected_before_cache_build(self, tiny_bundle,
                                                      tmp_path):
        from repro.serving import BundleIntegrityError

        torn = tmp_path / "torn.npz"
        data = Path(tiny_bundle["path"]).read_bytes()
        torn.write_bytes(data[:len(data) // 2])
        with pytest.raises(BundleIntegrityError):
            ModelBundle.load(torn, mmap_mode="r")
        assert not ModelBundle._mmap_cache_dir(torn).exists()
