"""The ``repro.perf`` layer: runtime profiles, fused kernels, profiler,
and the search-loop candidate cache.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.perf import (
    Profiler,
    current_profile,
    get_profile,
    profile_names,
    runtime_profile,
)
from repro.tensor import (
    Tensor,
    addmm,
    attention_aggregate,
    cross_entropy,
    fused_kernels,
    fused_kernels_enabled,
    gather_rows,
    get_default_dtype,
    head_dot,
    scatter_add,
    segment_softmax,
)
from repro.tensor.tensor import scatter_accumulate


def _t(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape),
                  requires_grad=True)


# ----------------------------------------------------------------------
# runtime profiles
# ----------------------------------------------------------------------
class TestRuntimeProfiles:
    def test_registry(self):
        assert set(profile_names()) == {"reference", "fast"}
        assert get_profile("fast").dtype == np.float32
        with pytest.raises(KeyError):
            get_profile("warp")

    def test_reference_is_default(self):
        assert current_profile().name == "reference"
        assert get_default_dtype() == np.float64
        assert not fused_kernels_enabled()

    def test_fast_profile_applies_and_restores(self):
        with runtime_profile("fast") as active:
            assert active.name == "fast"
            assert current_profile().name == "fast"
            assert get_default_dtype() == np.float32
            assert fused_kernels_enabled()
            assert Tensor([1.0]).dtype == np.float32
        assert current_profile().name == "reference"
        assert get_default_dtype() == np.float64
        assert not fused_kernels_enabled()

    def test_nested_profiles_restore_in_order(self):
        with runtime_profile("fast"):
            with runtime_profile("reference"):
                assert get_default_dtype() == np.float64
            assert get_default_dtype() == np.float32
        assert get_default_dtype() == np.float64

    def test_exit_restores_manual_engine_state_not_profile_defaults(self):
        from repro.tensor import set_fused_kernels
        # engine flags set manually, outside any named profile
        set_fused_kernels(True)
        try:
            with runtime_profile("reference"):
                assert not fused_kernels_enabled()
            assert fused_kernels_enabled()  # manual setting survives
        finally:
            set_fused_kernels(False)


# ----------------------------------------------------------------------
# fused kernels match the composites
# ----------------------------------------------------------------------
class TestFusedEquivalence:
    def test_cross_entropy_forward_bit_identical(self):
        logits = np.random.default_rng(0).normal(size=(9, 5))
        targets = np.random.default_rng(1).integers(0, 5, size=9)
        for reduction in ("mean", "sum", "none"):
            composite = cross_entropy(Tensor(logits), targets,
                                      reduction=reduction)
            with fused_kernels():
                fused = cross_entropy(Tensor(logits), targets,
                                      reduction=reduction)
            np.testing.assert_array_equal(composite.data, fused.data)

    def test_addmm_bit_identical(self):
        x, w, b = _t((6, 4)), _t((4, 3), seed=1), _t((3,), seed=2)
        composite = addmm(x, w, b)
        with fused_kernels():
            fused = addmm(x, w, b)
        np.testing.assert_array_equal(composite.data, fused.data)

    def test_addmm_fused_is_one_node(self):
        x, w, b = _t((6, 4)), _t((4, 3), seed=1), _t((3,), seed=2)
        with fused_kernels():
            out = addmm(x, w, b)
        assert out._parents == (x, w, b)

    def test_segment_softmax_matches(self):
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        scores = _t((7, 3))
        composite = segment_softmax(scores, seg, 3)
        with fused_kernels():
            fused = segment_softmax(_t((7, 3)), seg, 3)
        np.testing.assert_allclose(composite.data, fused.data,
                                   rtol=1e-12, atol=1e-14)

    def test_attention_aggregate_matches_composite(self):
        src = np.array([0, 1, 2, 3, 0, 2])
        dst = np.array([1, 1, 2, 0, 3, 3])
        alpha, x = _t((6, 2)), _t((4, 2, 5), seed=1)
        messages = gather_rows(x, src) * alpha.reshape(-1, 2, 1)
        composite = scatter_add(messages, dst, 4)
        with fused_kernels():
            fused = attention_aggregate(alpha, x, src, dst, 4)
        np.testing.assert_allclose(composite.data, fused.data,
                                   rtol=1e-12, atol=1e-14)

    def test_head_dot_matches_composite(self):
        x, vec = _t((5, 3, 4)), _t((3, 4), seed=1)
        composite = (x * vec).sum(axis=-1)
        with fused_kernels():
            fused = head_dot(x, vec)
        np.testing.assert_allclose(composite.data, fused.data,
                                   rtol=1e-12, atol=1e-14)

    def test_scatter_accumulate_fast_path_matches_add_at(self):
        rng = np.random.default_rng(0)
        index = rng.integers(0, 50, size=400)
        for trailing in ((), (3,), (4, 5)):  # 1-D, narrow, wide
            grad = rng.normal(size=(400,) + trailing)
            reference = np.zeros((50,) + trailing)
            np.add.at(reference, index, grad)
            fast = np.zeros((50,) + trailing)
            with fused_kernels():
                scatter_accumulate(fast, index, grad)
            np.testing.assert_allclose(reference, fast, rtol=1e-10,
                                       atol=1e-12)

    def test_scatter_accumulate_broadcastable_grad_falls_back(self):
        # np.add.at broadcasts grad against out[index]; the fast path must
        # not crash on those shapes — it falls back to the reference
        index = np.array([0, 1, 1, 2])
        grad = np.ones((4, 1))
        reference = np.zeros((3, 5))
        np.add.at(reference, index, grad)
        fast = np.zeros((3, 5))
        with fused_kernels():
            scatter_accumulate(fast, index, grad)
        np.testing.assert_array_equal(reference, fast)


# ----------------------------------------------------------------------
# op-level profiler
# ----------------------------------------------------------------------
class TestProfiler:
    def test_records_calls_time_and_bytes(self):
        with Profiler() as prof:
            a, b = _t((64, 64)), _t((64, 64), seed=1)
            (a @ b).sum().backward()
        report = prof.report()
        stats = {s.name: s for s in report.stats}
        assert stats["matmul"].calls == 1
        assert stats["matmul"].bytes_allocated == 64 * 64 * 8
        assert stats["matmul"].seconds >= 0.0
        assert "matmul.backward" in stats
        assert "tensor_sum" in stats

    def test_no_overhead_hook_removed_after_exit(self):
        from repro.tensor import _profile
        with Profiler():
            pass
        assert _profile.get_hook() is None

    def test_not_reentrant(self):
        prof = Profiler()
        with prof:
            with pytest.raises(RuntimeError):
                prof.__enter__()

    def test_render_table(self):
        with Profiler() as prof:
            (_t((8, 8)) @ _t((8, 8), seed=1)).sum().backward()
        table = prof.report().render()
        assert "op" in table and "calls" in table and "total ms" in table
        assert "matmul" in table

    def test_report_rows_machine_readable(self):
        with Profiler() as prof:
            (_t((4,)) * 2.0).sum().backward()
        rows = prof.report().as_rows()
        assert all({"op", "calls", "total_ms", "bytes"} <= set(row)
                   for row in rows)

    def test_profiling_off_is_default(self):
        from repro.tensor import _profile
        assert _profile.get_hook() is None

    def test_identity_ops_do_not_steal_upstream_backward(self):
        from repro.tensor import dropout
        with Profiler() as prof:
            x = _t((8, 4))
            y = x * 2.0
            dropout(y, 0.0, training=True).sum().backward()  # identity
        stats = {s.name for s in prof.report().stats}
        assert "dropout" in stats           # the call itself is counted
        assert "dropout.backward" not in stats
        assert "mul.backward" in stats      # upstream label preserved


# ----------------------------------------------------------------------
# search-loop candidate cache
# ----------------------------------------------------------------------
class TestCandidateCache:
    @staticmethod
    def _search(candidate_cache, **cfg_kwargs):
        from repro.core import AutoACConfig
        from repro.core.adapters import NodeClassificationAdapter
        from repro.core.search import AutoACSearcher
        from repro.datasets import get_dataset
        from repro.training import set_seed

        set_seed(0)
        dataset = get_dataset("imdb", scale="tiny", seed=0)
        config = AutoACConfig(search_epochs=5, patience=50, warmup_epochs=1,
                              candidate_cache=candidate_cache, **cfg_kwargs)
        searcher = AutoACSearcher(NodeClassificationAdapter(dataset),
                                  "simple_hgn", config, seed=0)
        return searcher, searcher.search()

    def test_cache_is_bitwise_identical_to_uncached(self):
        _, uncached = self._search(False)
        _, cached = self._search(True)
        for key in uncached.history:
            assert uncached.history[key] == cached.history[key], key
        assert np.array_equal(uncached.assignment, cached.assignment)
        assert uncached.best_val_score == cached.best_val_score

    def test_cache_disabled_for_unrolled_mixture(self):
        searcher, _ = self._search(True, discrete=False, unrolled=True)
        assert not searcher.use_candidate_cache

    def test_cache_follows_runtime_profile_when_unset(self):
        from repro.core import AutoACConfig
        from repro.core.adapters import NodeClassificationAdapter
        from repro.core.search import AutoACSearcher
        from repro.datasets import get_dataset

        dataset = get_dataset("imdb", scale="tiny", seed=0)
        adapter = NodeClassificationAdapter(dataset)
        assert not AutoACSearcher(adapter, "simple_hgn",
                                  AutoACConfig()).use_candidate_cache
        with runtime_profile("fast"):
            dataset_fast = get_dataset("imdb", scale="tiny", seed=1)
            adapter_fast = NodeClassificationAdapter(dataset_fast)
            assert AutoACSearcher(adapter_fast, "simple_hgn",
                                  AutoACConfig()).use_candidate_cache

    def test_rigged_projector_respects_frozen_parameters(self):
        from repro.completion import WeightedCompletionFeatures
        from repro.datasets import get_dataset
        from repro.tensor import Tensor

        dataset = get_dataset("imdb", scale="tiny", seed=0)
        features = WeightedCompletionFeatures(dataset, 8)
        frozen = features.projector.projections[
            dataset.attributed_types[0]].weight
        frozen.requires_grad = False
        num_missing = dataset.missing_global_ids.shape[0]
        weights = np.zeros((num_missing, len(features.space)))
        weights[:, 0] = 1.0
        features.set_weights(Tensor(weights))
        features.refresh_candidates()
        with features.candidate_mode("rigged"):
            features().sum().backward()
        # the frozen projection weight gets no grad, matching the live path
        assert frozen.grad is None
        live = [p for p in features.projector.parameters()
                if p.requires_grad]
        assert any(p.grad is not None for p in live)

    def test_snapshot_invalidated_after_search_step(self):
        searcher, _ = self._search(True)
        # search ends right after a validation pass, which repopulates
        assert searcher.features.has_candidates()
        searcher.features.invalidate_candidates()
        assert not searcher.features.has_candidates()


# ----------------------------------------------------------------------
# pipeline + CLI hooks
# ----------------------------------------------------------------------
class TestProfilingHooks:
    def test_run_autoac_profile_attaches_report(self):
        from repro.core import AutoACConfig, run_autoac
        from repro.datasets import get_dataset
        from repro.training import TrainConfig, set_seed

        set_seed(0)
        dataset = get_dataset("imdb", scale="tiny", seed=0)
        config = AutoACConfig(search_epochs=2, patience=10, warmup_epochs=1,
                              retrain=TrainConfig(epochs=2, patience=5))
        result = run_autoac(dataset, "simple_hgn", config, profile=True)
        assert result.profile is not None
        assert result.profile.total_calls > 0
        assert "matmul" in {s.name for s in result.profile.stats}

    def test_run_autoac_without_profile_has_none(self):
        from repro.core import AutoACConfig, run_autoac
        from repro.datasets import get_dataset
        from repro.training import TrainConfig, set_seed

        set_seed(0)
        dataset = get_dataset("imdb", scale="tiny", seed=0)
        config = AutoACConfig(search_epochs=2, patience=10, warmup_epochs=1,
                              retrain=TrainConfig(epochs=2, patience=5))
        assert run_autoac(dataset, "simple_hgn", config).profile is None

    def test_cli_profile_prints_table(self, capsys):
        from repro.cli import main

        code = main(["profile", "--dataset", "imdb", "--scale", "tiny",
                     "--epochs", "2", "--runtime", "fast", "--top", "10"])
        out = capsys.readouterr().out
        assert code == 0
        assert "runtime profile: fast" in out
        assert "total ms" in out
