"""Shape/gradient/determinism tests across the whole model zoo."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.models import (
    AUTOAC_BACKBONES,
    FULL_GRAPH_MODELS,
    MODEL_REGISTRY,
    SemanticAttention,
    build_model,
)
from repro.tensor import Tensor, cross_entropy, no_grad

ALL_MODELS = sorted(MODEL_REGISTRY)


@pytest.fixture(scope="module")
def imdb_features(imdb_tiny):
    return HandcraftedFeatures(imdb_tiny, 64)


@pytest.mark.parametrize("name", ALL_MODELS)
class TestEveryModel:
    def test_forward_shape(self, name, imdb_tiny, imdb_features):
        model = build_model(name, imdb_tiny)
        logits = model(imdb_features())
        n_target = imdb_tiny.graph.num_nodes_of(imdb_tiny.target_type)
        assert logits.shape == (n_target, imdb_tiny.num_classes)

    def test_gradients_flow_everywhere(self, name, imdb_tiny, imdb_features):
        model = build_model(name, imdb_tiny)
        loss = cross_entropy(model(imdb_features()), imdb_tiny.labels)
        loss.backward()
        missing = [pname for pname, p in model.named_parameters()
                   if p.grad is None]
        assert not missing, f"params without gradient: {missing}"

    def test_eval_forward_is_deterministic(self, name, imdb_tiny, imdb_features):
        model = build_model(name, imdb_tiny)
        model.eval()
        imdb_features.eval()
        with no_grad():
            h0 = imdb_features()
            first = model(h0).data
            second = model(h0).data
        imdb_features.train()
        np.testing.assert_array_equal(first, second)

    def test_encode_dimensions(self, name, imdb_tiny, imdb_features):
        model = build_model(name, imdb_tiny)
        with no_grad():
            encoded = model.encode(imdb_features())
        n = imdb_tiny.graph.num_nodes
        n_target = imdb_tiny.graph.num_nodes_of(imdb_tiny.target_type)
        expected_rows = n if model.full_graph else n_target
        assert encoded.shape[0] == expected_rows


class TestRegistry:
    def test_unknown_model(self, imdb_tiny):
        with pytest.raises(KeyError):
            build_model("transformer9000", imdb_tiny)

    def test_full_graph_flags(self):
        assert "simple_hgn" in FULL_GRAPH_MODELS
        assert "gcn" in FULL_GRAPH_MODELS
        assert "han" not in FULL_GRAPH_MODELS
        assert "magnn" not in FULL_GRAPH_MODELS

    def test_autoac_backbones_match_paper(self):
        assert AUTOAC_BACKBONES == ["magnn", "simple_hgn"]


class TestMetapathModels:
    def test_han_requires_metapaths(self, imdb_tiny):
        from dataclasses import replace
        stripped = replace(imdb_tiny, metapaths=[])
        with pytest.raises(ValueError):
            build_model("han", stripped)

    def test_magnn_requires_metapaths(self, imdb_tiny):
        from dataclasses import replace
        stripped = replace(imdb_tiny, metapaths=[])
        with pytest.raises(ValueError):
            build_model("magnn", stripped)

    def test_semantic_attention_single_path_identity(self):
        attention = SemanticAttention(8)
        z = Tensor(np.random.default_rng(0).normal(size=(5, 8)))
        out = attention([z])
        np.testing.assert_array_equal(out.data, z.data)

    def test_semantic_attention_convexity(self):
        attention = SemanticAttention(4)
        rng = np.random.default_rng(0)
        z1 = Tensor(rng.normal(size=(6, 4)))
        z2 = Tensor(rng.normal(size=(6, 4)))
        out = attention([z1, z2]).data
        low = np.minimum(z1.data, z2.data) - 1e-9
        high = np.maximum(z1.data, z2.data) + 1e-9
        assert np.all(out >= low) and np.all(out <= high)


class TestSimpleHGNDetails:
    def test_output_l2_normalized(self, imdb_tiny, imdb_features):
        model = build_model("simple_hgn", imdb_tiny)
        model.eval()
        with no_grad():
            encoded = model.encode(imdb_features())
        norms = np.linalg.norm(encoded.data, axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-6)

    def test_edge_residual_beta_zero_matches_plain_attention(self, imdb_tiny,
                                                             imdb_features):
        # beta=0 → alpha_prev unused; model must still run
        model = build_model("simple_hgn", imdb_tiny, beta=0.0)
        with no_grad():
            out = model(imdb_features())
        assert np.all(np.isfinite(out.data))


class TestGCNvsMLP:
    def test_gcn_uses_structure(self, imdb_tiny, imdb_features):
        """Shuffling h0 rows must change GCN output but not per-row MLP set."""
        gcn = build_model("gcn", imdb_tiny)
        gcn.eval()
        with no_grad():
            h0 = imdb_features()
            base = gcn(h0).data
            permuted = Tensor(h0.data[::-1].copy())
            shuffled = gcn(permuted).data
        assert not np.allclose(base, shuffled)


class TestHGTDetails:
    def test_rejects_mismatched_dims(self, imdb_tiny):
        with pytest.raises(ValueError):
            build_model("hgt", imdb_tiny, hidden_dim=64, out_dim=32)


class TestGATNE:
    def test_ignores_input_features(self, imdb_tiny, imdb_features):
        model = build_model("gatne", imdb_tiny)
        model.eval()
        with no_grad():
            h0 = imdb_features()
            a = model.encode(h0).data
            b = model.encode(Tensor(np.zeros_like(h0.data))).data
        np.testing.assert_array_equal(a, b)
