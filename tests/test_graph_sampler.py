"""GraphView + NeighborSampler: invariants, exactness, cache interplay."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.graph import GraphView, HeteroGraph, NeighborSampler
from repro.models import build_model
from repro.tensor import no_grad


def _target_seeds(dataset, count):
    return dataset.graph.to_global(dataset.target_type,
                                   np.arange(count, dtype=np.int64))


# ----------------------------------------------------------------------
# View construction invariants
# ----------------------------------------------------------------------
class TestGraphView:
    def test_seeds_come_first(self, imdb_tiny):
        sampler = NeighborSampler(imdb_tiny.graph, fanout=4, num_layers=2,
                                  seed=0)
        seeds = _target_seeds(imdb_tiny, 6)
        view = sampler.sample(seeds)
        assert np.array_equal(view.node_ids[:6], seeds)
        assert np.array_equal(view.seed_local, np.arange(6))

    def test_local_of_roundtrip(self, imdb_tiny):
        view = NeighborSampler(imdb_tiny.graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 5))
        local = view.local_of(view.node_ids)
        assert np.array_equal(local, np.arange(view.num_nodes))
        assert view.contains(int(view.node_ids[-1]))
        assert not view.contains(10 ** 9)

    def test_type_members_partition_the_view(self, imdb_tiny):
        graph = imdb_tiny.graph
        view = NeighborSampler(graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 5))
        total = 0
        for node_type in graph.node_types:
            view_local, parent_local = view.type_members(node_type)
            total += view_local.shape[0]
            recovered = graph.to_global(node_type, parent_local)
            assert np.array_equal(view.node_ids[view_local], recovered)
        assert total == view.num_nodes

    def test_edges_stay_inside_the_view(self, imdb_tiny):
        view = NeighborSampler(imdb_tiny.graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 5))
        src, dst, etype = view.all_edges()
        assert src.min() >= 0 and src.max() < view.num_nodes
        assert dst.min() >= 0 and dst.max() < view.num_nodes
        assert etype.max() < imdb_tiny.graph.num_relations

    def test_self_loop_edge_type_matches_full_graph(self, imdb_tiny):
        graph = imdb_tiny.graph
        view = NeighborSampler(graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 5))
        *_, etype, num_types = view.edge_arrays_with_self_loops()
        assert num_types == graph.num_relations + 1
        assert etype.max() == graph.num_relations

    def test_seed_validation(self, imdb_tiny):
        sampler = NeighborSampler(imdb_tiny.graph, fanout=4, seed=0)
        with pytest.raises(ValueError, match="unique"):
            sampler.sample(np.array([0, 0, 1]))
        with pytest.raises(ValueError, match="empty"):
            sampler.sample(np.array([], dtype=np.int64))
        with pytest.raises(ValueError, match="range"):
            sampler.sample(np.array([10 ** 9]))

    def test_induced_view_keeps_every_internal_edge(self, imdb_tiny):
        graph = imdb_tiny.graph
        sampled = NeighborSampler(graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 8))
        induced = GraphView.induced(graph, sampled.node_ids,
                                    sampled.seed_ids)
        assert induced.num_nodes == sampled.num_nodes
        assert induced.num_edges() >= sampled.num_edges()


# ----------------------------------------------------------------------
# Sampler semantics
# ----------------------------------------------------------------------
class TestNeighborSampler:
    def test_fanout_cap_per_relation(self, imdb_tiny):
        fanout = 3
        view = NeighborSampler(imdb_tiny.graph, fanout=fanout,
                               num_layers=2, seed=0).sample(
            _target_seeds(imdb_tiny, 10))
        for relation in view.relations:
            pairs = view.edges_local(relation)
            _, counts = np.unique(pairs[1], return_counts=True)
            assert counts.max() <= fanout

    def test_deterministic_given_seed(self, imdb_tiny):
        seeds = _target_seeds(imdb_tiny, 10)
        a = NeighborSampler(imdb_tiny.graph, fanout=3, seed=42).sample(seeds)
        b = NeighborSampler(imdb_tiny.graph, fanout=3, seed=42).sample(seeds)
        assert np.array_equal(a.node_ids, b.node_ids)
        assert a.relations == b.relations
        for relation in a.relations:
            assert np.array_equal(a.edges_local(relation),
                                  b.edges_local(relation))

    def test_relation_fanout_mapping(self, imdb_tiny):
        graph = imdb_tiny.graph
        only = graph.relations[0]
        sampler = NeighborSampler(graph, fanout={only: 2}, num_layers=1,
                                  seed=0)
        assert sampler.fanout_of(only) == 2
        assert sampler.fanout_of(graph.relations[1]) == 0
        view = sampler.sample(_target_seeds(imdb_tiny, 5))
        assert set(view.relations) <= {only}

    def test_view_size_within_analytic_bound(self, imdb_tiny):
        sampler = NeighborSampler(imdb_tiny.graph, fanout=3, num_layers=2,
                                  seed=0)
        view = sampler.sample(_target_seeds(imdb_tiny, 4))
        assert view.num_nodes <= sampler.max_view_nodes(4)

    def test_sample_type_convenience(self, imdb_tiny):
        sampler = NeighborSampler(imdb_tiny.graph, fanout=3, seed=0)
        view = sampler.sample_type(imdb_tiny.target_type, [0, 1, 2])
        expected = imdb_tiny.graph.to_global(imdb_tiny.target_type,
                                             np.array([0, 1, 2]))
        assert np.array_equal(view.seed_ids, expected)

    def test_invalid_construction(self, imdb_tiny):
        with pytest.raises(ValueError, match="num_layers"):
            NeighborSampler(imdb_tiny.graph, fanout=3, num_layers=0)
        with pytest.raises(ValueError, match="fanout"):
            NeighborSampler(imdb_tiny.graph, fanout=0)


# ----------------------------------------------------------------------
# Exactness: extraction-based operators and large-fanout sampling
# ----------------------------------------------------------------------
class TestExactness:
    def test_normalized_adjacency_is_extracted_not_renormalized(self, imdb_tiny):
        graph = imdb_tiny.graph
        view = NeighborSampler(graph, fanout=4, seed=0).sample(
            _target_seeds(imdb_tiny, 6))
        sub = view.normalized_adjacency(mode="sym", self_loops=True)
        full = graph.normalized_adjacency(mode="sym",
                                          self_loops=True).to_scipy()
        expected = full[view.node_ids][:, view.node_ids].toarray()
        np.testing.assert_allclose(sub.to_dense(), expected, atol=1e-12)

    @pytest.mark.parametrize("name", ["gcn", "gat", "simple_hgn"])
    def test_full_induced_view_matches_full_graph(self, imdb_tiny, name):
        dataset = imdb_tiny
        graph = dataset.graph
        features = HandcraftedFeatures(dataset, 16)
        model = build_model(name, dataset, hidden_dim=16, out_dim=16)
        model.eval()
        features.eval()
        target = graph.global_ids(dataset.target_type)
        view = GraphView.induced(graph, np.arange(graph.num_nodes),
                                 seed_ids=target)
        with no_grad():
            full_logits = model(features()).data
            view_logits = model(features(view), view=view).data
        np.testing.assert_allclose(view_logits, full_logits, atol=1e-8)

    def test_large_fanout_sampling_is_exact(self, imdb_tiny):
        """Fanout >= max degree keeps every neighbor: seed logits match
        the full-graph forward exactly (the parity the mini-batch
        trainer's quality guarantee rests on)."""
        dataset = imdb_tiny
        graph = dataset.graph
        fanout = int(graph.degrees().max()) + 1
        features = HandcraftedFeatures(dataset, 16)
        model = build_model("gcn", dataset, hidden_dim=16, out_dim=16,
                            num_layers=2)
        model.eval()
        features.eval()
        seeds_local = np.arange(12, dtype=np.int64)
        view = NeighborSampler(graph, fanout=fanout, num_layers=2,
                               seed=0).sample(
            graph.to_global(dataset.target_type, seeds_local))
        with no_grad():
            full_logits = model(features()).data[seeds_local]
            view_logits = model(features(view), view=view).data
        np.testing.assert_allclose(view_logits, full_logits, atol=1e-10)

    def test_full_graph_only_model_rejects_view(self, imdb_tiny):
        view = NeighborSampler(imdb_tiny.graph, fanout=3, seed=0).sample(
            _target_seeds(imdb_tiny, 4))
        features = HandcraftedFeatures(imdb_tiny, 16)
        model = build_model("mlp", imdb_tiny, hidden_dim=16, out_dim=16)
        with pytest.raises(ValueError, match="full-graph only"):
            model(features(view), view=view)


# ----------------------------------------------------------------------
# Mutation interplay: append_node / rollback vs sampling + LRU caches
# ----------------------------------------------------------------------
class TestMutationInterplay:
    @staticmethod
    def _graph():
        edges = {
            ("movie", "stars", "actor"): np.array([[0, 0, 1, 2, 3],
                                                   [0, 1, 1, 2, 2]]),
            ("movie", "tagged", "tag"): np.array([[0, 1, 2, 3],
                                                  [0, 0, 1, 1]]),
        }
        graph = HeteroGraph({"movie": 4, "actor": 3, "tag": 2}, edges)
        graph.add_reverse_relations()
        return graph

    def test_onboarded_node_appears_in_subsequent_samples(self):
        graph = self._graph()
        stars = ("movie", "stars", "actor")
        # new actor starring in movie 0; reverse edge mirrored
        new_local = graph.append_node("actor", {stars: np.array([0])})
        new_global = int(graph.to_global("actor",
                                         np.array([new_local]))[0])
        view = NeighborSampler(graph, fanout=16, num_layers=1,
                               seed=0).sample(np.array([0]))  # movie 0
        assert view.contains(new_global), (
            "an onboarded node must be reachable by fresh samples")

    def test_sample_csr_cache_survives_unrelated_append(self):
        graph = self._graph()
        sampler = NeighborSampler(graph, fanout=4, num_layers=2, seed=0)
        sampler.sample(np.array([0, 1]))  # populate sample CSRs
        stars = ("movie", "stars", "actor")
        tagged = ("movie", "tagged", "tag")
        assert ("sample_csr", stars) in graph._norm_cache
        assert ("sample_csr", tagged) in graph._norm_cache
        graph.append_node("tag", {tagged: np.array([0])})
        # the actor-side structure survives, the tag-side one is dropped
        assert ("sample_csr", stars) in graph._norm_cache
        assert ("sample_csr", tagged) not in graph._norm_cache

    def test_rollback_restores_sampling_state(self):
        graph = self._graph()
        stars = ("movie", "stars", "actor")
        before = NeighborSampler(graph, fanout=16, num_layers=2,
                                 seed=7).sample(np.array([0, 1]))
        new_local = graph.append_node("actor", {stars: np.array([0])})
        assert graph.pop_node("actor") == new_local
        after = NeighborSampler(graph, fanout=16, num_layers=2,
                                seed=7).sample(np.array([0, 1]))
        assert np.array_equal(before.node_ids, after.node_ids)
        for relation in before.relations:
            assert np.array_equal(before.edges_local(relation),
                                  after.edges_local(relation))

    def test_stale_sample_csr_not_reused_after_append(self):
        """append_node must invalidate the relation's sampling CSR —
        otherwise a fresh sampler would read edges of the old graph."""
        graph = self._graph()
        stars = ("movie", "stars", "actor")
        NeighborSampler(graph, fanout=4, seed=0).sample(np.array([0]))
        assert ("sample_csr", stars) in graph._norm_cache
        graph.append_node("actor", {stars: np.array([0, 1])})
        assert ("sample_csr", stars) not in graph._norm_cache
        # re-sampling rebuilds it against the mutated edge list
        view = NeighborSampler(graph, fanout=16, num_layers=1,
                               seed=0).sample(np.array([0]))
        new_global = int(graph.to_global(
            "actor", np.array([graph.num_nodes_of("actor") - 1]))[0])
        assert view.contains(new_global)
