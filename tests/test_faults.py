"""repro.faults + the robustness layers it proves.

Covers the fault-plan substrate (deterministic decisions, env
propagation, corrupt/delay/raise actions), the durable-write utilities,
bundle integrity checking, admission/deadline/breaker primitives, the
onboarding WAL, and the self-healing trial scheduler.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.faults import (
    PLAN_ENV_VAR,
    FaultInjected,
    FaultPlan,
    FaultRule,
    armed,
    fault_site,
    is_armed,
    plan_from_env,
)
from repro.io import JsonlAppender, atomic_write_bytes, read_jsonl


def plan(*rules, seed=0):
    return FaultPlan(rules, seed=seed)


class TestFaultPlan:
    def test_disarmed_site_is_identity(self):
        assert not is_armed()
        payload = b"bytes through"
        assert fault_site("engine.flush", payload=payload) is payload

    def test_raise_action_and_scoped_arming(self):
        with armed(plan(FaultRule(site="x", action="raise"))):
            assert is_armed()
            with pytest.raises(FaultInjected, match="injected fault"):
                fault_site("x")
            # other sites are untouched
            assert fault_site("y", payload=1) == 1
        assert not is_armed()

    def test_probability_stream_is_seed_deterministic(self):
        def fires(seed):
            p = plan(FaultRule(site="s", action="raise", probability=0.5),
                     seed=seed)
            out = []
            for _ in range(64):
                try:
                    p.visit("s")
                    out.append(False)
                except FaultInjected:
                    out.append(True)
            return out

        first, second = fires(seed=42), fires(seed=42)
        assert first == second
        assert fires(seed=43) != first        # seed actually matters
        assert 8 < sum(first) < 56            # roughly half fire

    def test_after_and_max_hits_window(self):
        p = plan(FaultRule(site="s", action="raise", after=2, max_hits=2))
        outcomes = []
        for _ in range(6):
            try:
                p.visit("s")
                outcomes.append("ok")
            except FaultInjected:
                outcomes.append("boom")
        assert outcomes == ["ok", "ok", "boom", "boom", "ok", "ok"]

    def test_keyed_rule_only_fires_on_matching_keys(self):
        p = plan(FaultRule(site="w", action="raise", keys=("3:0",)))
        p.visit("w", key="3:1")          # retry attempt — survives
        p.visit("w", key="4:0")          # different trial — survives
        p.visit("w")                     # unkeyed visit — survives
        with pytest.raises(FaultInjected):
            p.visit("w", key="3:0")

    def test_corrupt_is_deterministic_and_bounded(self):
        rule = FaultRule(site="io", action="corrupt")
        original = bytes(range(64))
        a = plan(rule, seed=9).visit("io", payload=original, key="k")
        b = plan(rule, seed=9).visit("io", payload=original, key="k")
        assert a == b and a != original
        flipped = sum(x != y for x, y in zip(a, original))
        assert 1 <= flipped <= 8

    def test_json_and_env_round_trip(self):
        original = plan(
            FaultRule(site="a", action="delay", latency_ms=5.0,
                      probability=0.25, after=1, max_hits=3),
            FaultRule(site="b", action="kill", keys=("1:0", "2:0")),
            seed=77)
        clone = FaultPlan.from_json(original.to_json())
        assert clone.to_dict() == original.to_dict()
        with armed(original):
            assert os.environ[PLAN_ENV_VAR] == original.to_json()
            from_env = plan_from_env()
            assert from_env.to_dict() == original.to_dict()
        assert PLAN_ENV_VAR not in os.environ

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown fault action"):
            FaultRule(site="s", action="explode")

    def test_counters_account_visits_and_hits(self):
        p = plan(FaultRule(site="s", action="raise", after=1))
        p.visit("s")
        with pytest.raises(FaultInjected):
            p.visit("s")
        counts = p.counters()["s#0"]
        assert counts == {"visits": 2, "hits": 1}


class TestDurableIO:
    def test_atomic_write_replaces_and_leaves_no_residue(self, tmp_path):
        target = tmp_path / "artifact.bin"
        atomic_write_bytes(target, b"v1")
        atomic_write_bytes(target, b"v2")
        assert target.read_bytes() == b"v2"
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_atomic_write_failure_cleans_tmp(self, tmp_path):
        target = tmp_path / "artifact.bin"
        target.write_bytes(b"old")
        with armed(plan(FaultRule(site="io.atomic_write", action="raise"))):
            with pytest.raises(FaultInjected):
                atomic_write_bytes(target, b"new")
        assert target.read_bytes() == b"old"          # old file intact
        assert [p.name for p in tmp_path.iterdir()] == ["artifact.bin"]

    def test_jsonl_appender_seals_torn_tail(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with JsonlAppender(path) as log:
            log.write({"kind": "a", "n": 1})
        # simulate a kill mid-write: torn final line, no newline
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"kind": "b", "n"')
        with JsonlAppender(path) as log:
            log.write({"kind": "c", "n": 3})
        records = read_jsonl(path)
        assert [r["kind"] for r in records] == ["a", "c"]

    def test_read_jsonl_missing_file_is_empty(self, tmp_path):
        assert read_jsonl(tmp_path / "absent.jsonl") == []


class TestBundleIntegrity:
    @pytest.mark.parametrize("corruption_seed", [1, 2, 3, 4, 5])
    def test_corrupted_bundle_never_loads(self, tiny_bundle, tmp_path,
                                          corruption_seed):
        from repro.serving import BundleIntegrityError, ModelBundle

        bundle = ModelBundle.load(tiny_bundle["path"])
        path = tmp_path / "corrupt.npz"
        with armed(plan(FaultRule(site="io.atomic_write", action="corrupt"),
                        seed=corruption_seed)):
            bundle.save(path)
        # the write went through (rename can't catch bit rot) ...
        assert path.exists()
        # ... but the load refuses to serve the torn artifact
        with pytest.raises((BundleIntegrityError, ValueError)):
            ModelBundle.load(path)

    def test_clean_round_trip_untouched(self, tiny_bundle, tmp_path):
        from repro.serving import ModelBundle

        bundle = ModelBundle.load(tiny_bundle["path"])
        path = tmp_path / "clean.npz"
        bundle.save(path)
        clone = ModelBundle.load(path)
        np.testing.assert_array_equal(clone.assignment, bundle.assignment)


class TestAdmission:
    def test_deadline_expiry_and_scope(self):
        from repro.serving import Deadline, DeadlineExceeded
        from repro.serving.admission import check_deadline, deadline_scope

        ticks = iter([0.0, 0.0, 0.2])
        deadline = Deadline.after_ms(100, clock=lambda: next(ticks))
        with deadline_scope(deadline):
            check_deadline()                 # 0.0 < 0.1 — fine
            with pytest.raises(DeadlineExceeded, match="at forward"):
                check_deadline("forward")    # 0.2 > 0.1 — expired
        check_deadline()                     # no ambient deadline again

    def test_admission_sheds_beyond_queue(self):
        from repro.serving import AdmissionController, ShedError

        gate = AdmissionController(max_inflight=1, max_queue=0)
        with gate.admit():
            assert gate.inflight == 1
            with pytest.raises(ShedError, match="queue-full"):
                with gate.admit():
                    pass
        assert gate.inflight == 0
        with gate.admit():                   # slot freed — admitted again
            pass

    def test_queue_timeout_sheds(self):
        from repro.serving import AdmissionController, ShedError

        gate = AdmissionController(max_inflight=1, max_queue=4)
        with gate.admit():
            with pytest.raises(ShedError, match="queue-timeout"):
                with gate.admit(timeout_s=0.01):
                    pass

    def test_draining_sheds_new_arrivals(self):
        from repro.serving import AdmissionController, ShedError

        gate = AdmissionController(max_inflight=2, max_queue=2)
        gate.drain()
        with pytest.raises(ShedError, match="draining"):
            with gate.admit():
                pass
        assert gate.wait_idle(timeout_s=0.1)

    def test_circuit_breaker_transitions(self):
        from repro.serving import CircuitBreaker, CircuitOpenError

        clock = {"now": 0.0}
        breaker = CircuitBreaker(failure_threshold=2, cooldown_s=10.0,
                                 clock=lambda: clock["now"])

        def call(fail):
            with breaker.guard():
                if fail:
                    raise RuntimeError("downstream broken")

        call(fail=False)
        assert breaker.state == "closed"
        for _ in range(2):
            with pytest.raises(RuntimeError):
                call(fail=True)
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as excinfo:
            call(fail=False)
        assert excinfo.value.retry_after_s == pytest.approx(10.0)
        clock["now"] = 11.0                  # cooldown elapsed → half-open
        assert breaker.state == "half-open"
        with pytest.raises(RuntimeError):
            call(fail=True)                  # failed probe re-opens
        assert breaker.state == "open"
        clock["now"] = 25.0
        call(fail=False)                     # successful probe closes
        assert breaker.state == "closed"


class TestOnboardWAL:
    def _onboard_request(self, engine):
        graph = engine.dataset.graph
        target = engine.bundle.target_type
        relation = next(rel for rel in graph.relations
                        if target in (rel[0], rel[2]))
        other = relation[2] if relation[0] == target else relation[0]
        node_type = other if engine.dataset.features[other] is None else target
        # onboard an attribute-less node so the completion path runs too
        for rel in graph.relations:
            if node_type in (rel[0], rel[2]):
                peer = rel[2] if rel[0] == node_type else rel[0]
                return (node_type,
                        {":".join(rel): [0, 1 % graph.num_nodes_of(peer)]})
        raise AssertionError("no relation touches the chosen type")

    def test_wal_replay_rebuilds_identical_overlay(self, tiny_bundle,
                                                   tmp_path):
        from repro.serving import (
            EngineConfig,
            InferenceEngine,
            ModelBundle,
        )

        wal_path = tmp_path / "onboard.wal"
        first = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                EngineConfig(),
                                dataset=tiny_bundle["dataset"])
        assert first.attach_wal(wal_path) == 0
        node_type, edges = self._onboard_request(first)
        result = first.onboard(node_type, edges)
        first.close()
        assert read_jsonl(wal_path)          # durably logged

        # "crash": a brand-new engine process loads the same bundle and
        # replays the WAL — the overlay must be bit-identical
        second = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 EngineConfig(),
                                 dataset=tiny_bundle["dataset"])
        assert second.attach_wal(wal_path) == 1
        replayed = second._onboarding.result(node_type, result.local_id)
        assert replayed.cluster == result.cluster
        assert replayed.op_name == result.op_name
        assert replayed.prediction == result.prediction
        if result.embedding is not None:
            np.testing.assert_allclose(replayed.embedding, result.embedding)
        assert second.num_onboarded == 1
        second.close()

    def test_replay_is_not_reappended(self, tiny_bundle, tmp_path):
        from repro.serving import (
            EngineConfig,
            InferenceEngine,
            ModelBundle,
        )

        wal_path = tmp_path / "onboard.wal"
        first = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                EngineConfig(),
                                dataset=tiny_bundle["dataset"])
        first.attach_wal(wal_path)
        node_type, edges = self._onboard_request(first)
        first.onboard(node_type, edges)
        first.close()
        before = len(read_jsonl(wal_path))
        second = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 EngineConfig(),
                                 dataset=tiny_bundle["dataset"])
        second.attach_wal(wal_path)
        second.close()
        assert len(read_jsonl(wal_path)) == before

    def test_double_attach_rejected(self, tiny_bundle, tmp_path):
        from repro.serving import (
            EngineConfig,
            InferenceEngine,
            ModelBundle,
        )

        engine = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 EngineConfig(),
                                 dataset=tiny_bundle["dataset"])
        engine.attach_wal(tmp_path / "a.wal")
        with pytest.raises(ValueError, match="already has a WAL"):
            engine.attach_wal(tmp_path / "b.wal")
        engine.close()


def _tiny_task(**overrides):
    from repro.autotune import DatasetRef, TuneTask

    defaults = dict(dataset=DatasetRef("imdb", "tiny", 0), model_name="gcn",
                    hidden_dim=16, out_dim=16, num_slots=4, max_budget=4)
    defaults.update(overrides)
    return TuneTask(**defaults)


def _run_tune(journal=None, resume=False, workers=2, retries=2,
              trials=4, timeout=None):
    from repro.autotune import TrialScheduler, build_strategy

    task = _tiny_task()
    strategy = build_strategy("random", num_slots=task.num_slots,
                              num_ops=task.num_ops,
                              max_budget=task.max_budget, seed=3,
                              num_trials=trials)
    scheduler = TrialScheduler(task, strategy, workers=workers,
                               mp_context="fork", journal=journal,
                               resume=resume, max_trial_retries=retries,
                               retry_backoff_s=0.01,
                               trial_timeout_s=timeout)
    return scheduler.run()


needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="worker-kill injection relies on fork inheriting the armed plan")


@needs_fork
class TestSelfHealingScheduler:
    def test_killed_workers_retry_to_identical_leaderboard(self):
        baseline = _run_tune()
        kill_plan = plan(FaultRule(site="worker.trial", action="kill",
                                   keys=("1:0", "3:0")))
        with armed(kill_plan):
            healed = _run_tune()
        assert healed.stats.worker_deaths >= 2
        assert healed.stats.retried >= 2
        assert healed.stats.quarantined == 0
        want = [(r.trial_id, r.score) for r in baseline.leaderboard()]
        got = [(r.trial_id, r.score) for r in healed.leaderboard()]
        assert got == want                   # deaths invisible in the result

    def test_poison_trial_quarantined_and_resume_replays_it(self, tmp_path):
        from repro.autotune import TrialJournal

        journal = tmp_path / "quarantine.jsonl"
        poison = plan(FaultRule(site="worker.trial", action="kill",
                                keys=("1:0", "1:1", "1:2")))
        with armed(poison):
            report = _run_tune(journal=journal, retries=2)
        assert report.stats.quarantined == 1
        sick = next(r for r in report.results if r.trial_id == 1)
        assert sick.status == "quarantined" and sick.failed
        assert 1 not in {r.trial_id for r in report.leaderboard()}
        # the verdict is journaled: resume replays it, never re-executes
        journaled = {entry["trial"]["trial_id"]: entry["result"]["status"]
                     for entry in TrialJournal.read(journal)[1]}
        assert journaled[1] == "quarantined"
        resumed = _run_tune(journal=journal, resume=True)
        assert resumed.stats.replayed == 4 and resumed.stats.executed == 0
        want = [(r.trial_id, r.score) for r in report.leaderboard()]
        got = [(r.trial_id, r.score) for r in resumed.leaderboard()]
        assert got == want

    def test_no_retries_preserves_transient_death_semantics(self):
        kill_plan = plan(FaultRule(site="worker.trial", action="kill",
                                   keys=("2:0",)))
        with armed(kill_plan):
            report = _run_tune(retries=0)
        dead = [r for r in report.results if r.status == "worker_died"]
        assert dead and report.stats.retried == 0

    def test_hung_trial_times_out_without_stalling_the_run(self):
        hang = plan(FaultRule(site="worker.trial", action="delay",
                              latency_ms=8_000, keys=("0:0",)))
        with armed(hang):
            report = _run_tune(trials=2, timeout=3.0, retries=0)
        assert report.stats.timeouts == 1
        hung = next(r for r in report.results if r.trial_id == 0)
        assert hung.failed and "timeout" in hung.error
        survivor = next(r for r in report.results if r.trial_id == 1)
        assert not survivor.failed
