"""Tests for repro.runs: timelines, stoppers, run registry, HTML reports."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotune import (
    AllStopper,
    AnyStopper,
    DatasetRef,
    MaxTrialsStopper,
    ProgressThresholdStopper,
    TargetScoreStopper,
    Trial,
    TrialJournal,
    TrialResult,
    TrialScheduler,
    TuneTask,
    build_strategy,
)
from repro.experiments.reporting import render_run_diff, render_runs_index
from repro.runs import (
    MetricTimeline,
    RunRecord,
    RunRegistry,
    fingerprint_diff,
    render_report,
    write_report,
)
from repro.training.metrics import alpha_entropy


def tiny_task(**overrides) -> TuneTask:
    defaults = dict(dataset=DatasetRef("imdb", "tiny", 0), model_name="gcn",
                    hidden_dim=16, out_dim=16, num_slots=4, max_budget=4)
    defaults.update(overrides)
    return TuneTask(**defaults)


def told(trial_id: int, score, failed: bool = False) -> tuple:
    trial = Trial(trial_id=trial_id, budget=4, seed=trial_id)
    result = TrialResult(trial_id=trial_id,
                         score=None if failed else float(score),
                         status="failed" if failed else "completed")
    return trial, result


def write_synthetic_journal(path, seed=0, trials=3, stopped=None,
                            with_timelines=True):
    """A hand-built journal: fixed scores, no training involved."""
    fingerprint = {
        "task": {"dataset": {"name": "imdb", "scale": "tiny", "seed": seed},
                 "model_name": "gcn", "num_slots": 4, "max_budget": 4,
                 "hidden_dim": 16},
        "strategy": {"strategy": "random", "seed": seed,
                     "num_trials": trials},
    }
    journal = TrialJournal(path)
    journal.open(fingerprint)
    for trial_id in range(trials):
        score = round(0.3 + 0.1 * ((trial_id * 7 + seed) % 5), 4)
        trial = Trial(trial_id=trial_id, budget=4, seed=100 + trial_id,
                      ops=[trial_id % 4] * 4, rung=0)
        result = TrialResult(trial_id=trial_id, score=score,
                             macro_f1=score - 0.05, micro_f1=score + 0.01,
                             budget_used=4, seconds=1.5, seed=trial.seed,
                             rung=0, ops=trial.ops)
        journal.append_trial(trial.to_dict(), result.to_dict())
        if with_timelines:
            timeline = MetricTimeline(trial_id=trial_id)
            timeline.add_curve("retrain/val_macro_f1",
                               [score - 0.2, score - 0.1, score])
            timeline.add_curve("retrain/train_loss", [1.0, 0.7, 0.5])
            timeline.add_event("rung", rung=0, budget=4, budget_used=4,
                               parent_id=None)
            journal.append_timeline(timeline.to_dict())
    journal.append_footer({"stats": {"executed": trials, "replayed": 0,
                                     "failed": 0, "batches": 1,
                                     "worker_deaths": 0},
                           "stopped": stopped})
    journal.close()
    return fingerprint


class TestAlphaEntropy:
    def test_uniform_rows_hit_log_num_ops(self):
        alpha = np.full((6, 4), 0.25)
        assert alpha_entropy(alpha) == pytest.approx(np.log(4))

    def test_collapsed_box_row_reads_zero(self):
        alpha = np.zeros((3, 4))
        alpha[:, 1] = 1.0
        assert alpha_entropy(alpha) == pytest.approx(0.0, abs=1e-9)

    def test_negative_values_take_softmax_branch(self):
        logits = np.array([[10.0, -10.0, -10.0, -10.0]])
        assert alpha_entropy(logits) == pytest.approx(0.0, abs=1e-6)
        flat = np.zeros((2, 4))  # zero logits → uniform softmax
        assert alpha_entropy(flat) == pytest.approx(np.log(4), rel=1e-6)

    def test_degenerate_inputs_read_zero(self):
        assert alpha_entropy(np.zeros((0, 4))) == 0.0
        assert alpha_entropy(np.zeros(5)) == 0.0


class TestMetricTimeline:
    def test_roundtrip_and_sorted_curves(self):
        timeline = MetricTimeline(trial_id=7)
        timeline.add_curve("zeta", [1, 2])
        timeline.add_curve("alpha", [3.0])
        timeline.add_event("rung", rung=1, budget=8)
        payload = timeline.to_dict()
        assert list(payload["curves"]) == ["alpha", "zeta"]
        assert payload["curves"]["zeta"] == [1.0, 2.0]
        back = MetricTimeline.from_dict(json.loads(json.dumps(payload)))
        assert back.trial_id == 7
        assert back.curves == {"alpha": [3.0], "zeta": [1.0, 2.0]}
        assert back.events[0]["kind"] == "rung"

    def test_empty_curves_are_skipped(self):
        timeline = MetricTimeline(trial_id=0)
        timeline.add_curve("empty", [])
        assert timeline.curves == {}
        assert timeline.epochs == 0

    def test_epochs_is_longest_curve(self):
        timeline = MetricTimeline(trial_id=0)
        timeline.add_curve("a", [1, 2, 3])
        timeline.add_curve("b", [1])
        assert timeline.epochs == 3


class TestStoppers:
    def test_progress_fires_after_patience_stale_trials(self):
        stopper = ProgressThresholdStopper(patience=2)
        assert stopper.update(*told(0, 0.5)) is None  # first → improvement
        assert stopper.update(*told(1, 0.4)) is None  # stale 1
        reason = stopper.update(*told(2, 0.5))        # tie is NOT progress
        assert reason is not None and "no improvement" in reason

    def test_progress_improvement_resets_patience(self):
        stopper = ProgressThresholdStopper(patience=2)
        stopper.update(*told(0, 0.5))
        stopper.update(*told(1, 0.4))
        assert stopper.update(*told(2, 0.6)) is None  # reset
        assert stopper.update(*told(3, 0.1)) is None
        assert stopper.update(*told(4, 0.1)) is not None

    def test_progress_min_delta_is_strict(self):
        # binary-exact values so ``==`` vs ``>`` is actually exercised
        stopper = ProgressThresholdStopper(patience=2, min_delta=0.25)
        stopper.update(*told(0, 0.5))
        assert stopper.update(*told(1, 0.75)) is None   # == delta: stale
        assert stopper.best_score == 0.75               # still tracked
        assert stopper.update(*told(2, 0.875)) is not None

    def test_progress_failed_trials_burn_patience(self):
        stopper = ProgressThresholdStopper(patience=2)
        assert stopper.update(*told(0, None, failed=True)) is None
        assert stopper.update(*told(1, None, failed=True)) is not None

    def test_progress_rejects_bad_params(self):
        with pytest.raises(ValueError, match="patience"):
            ProgressThresholdStopper(patience=0)
        with pytest.raises(ValueError, match="min_delta"):
            ProgressThresholdStopper(min_delta=-0.1)

    def test_target_score(self):
        stopper = TargetScoreStopper(0.8)
        assert stopper.update(*told(0, 0.79)) is None
        assert stopper.update(*told(1, None, failed=True)) is None
        assert "target" in stopper.update(*told(2, 0.8))

    def test_max_trials(self):
        stopper = MaxTrialsStopper(2)
        assert stopper.update(*told(0, 0.1)) is None
        assert stopper.update(*told(1, None, failed=True)) is not None

    def test_or_fires_on_either_and_flattens(self):
        stopper = (TargetScoreStopper(0.9) | MaxTrialsStopper(3)
                   | TargetScoreStopper(0.95))
        assert isinstance(stopper, AnyStopper)
        assert len(stopper.stoppers) == 3  # nesting flattened
        assert stopper.update(*told(0, 0.91)) is not None

    def test_and_needs_every_member(self):
        stopper = TargetScoreStopper(0.8) & MaxTrialsStopper(2)
        assert isinstance(stopper, AllStopper)
        assert stopper.update(*told(0, 0.9)) is None   # target fired only
        reason = stopper.update(*told(1, 0.1))         # limit fires too
        assert "target" in reason and "limit" in reason

    def test_composite_requires_two_members(self):
        with pytest.raises(ValueError, match=">= 2"):
            AnyStopper(MaxTrialsStopper(1))

    def test_fingerprints_are_jsonable_identities(self):
        stopper = ProgressThresholdStopper(patience=3, min_delta=0.01) | \
            TargetScoreStopper(0.9)
        payload = json.loads(json.dumps(stopper.fingerprint()))
        assert payload["stopper"] == "any"
        members = payload["members"]
        assert members[0] == {"stopper": "progress", "patience": 3,
                              "min_delta": 0.01}
        assert members[1] == {"stopper": "target_score", "target": 0.9}


class TestSchedulerStopper:
    """Stopper integration: verdicts, footers, determinism contracts."""

    def run_evolution(self, stopper=None, journal=None, resume=False,
                      workers=0, seed=0):
        task = tiny_task()
        strategy = build_strategy("evolution", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, seed=seed,
                                  num_trials=10, population_size=3,
                                  sample_size=2, batch_size=2)
        return TrialScheduler(task, strategy, workers=workers,
                              journal=journal, resume=resume,
                              stopper=stopper).run()

    def leaderboard_of(self, report):
        return [(r.trial_id, r.score) for r in report.leaderboard()]

    def test_stopper_ends_run_early_and_lands_in_footer(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        full = self.run_evolution(journal=tmp_path / "full.jsonl")
        report = self.run_evolution(
            stopper=ProgressThresholdStopper(patience=2), journal=journal)
        assert report.stopped is not None
        assert report.stopped["stopper"] == "progress"
        assert len(report.results) < len(full.results)
        footer = TrialJournal.read_all(journal).footer
        assert footer["stopped"] == report.stopped
        assert footer["stats"]["executed"] == report.stats.executed

    def test_whole_batch_is_told_before_stopping(self):
        # the firing batch already ran — every result in it is told and
        # reported, then the run ends (no further batches are asked)
        report = self.run_evolution(stopper=MaxTrialsStopper(2))
        assert report.stopped is not None
        # evolution's first batch is the 3-member seed population: the
        # stopper fires at the 2nd told trial but all 3 are reported
        assert len(report.results) == 3
        assert report.stopped["trial_id"] == 1

    def test_stopped_run_resumes_to_identical_verdict(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        stopper = ProgressThresholdStopper(patience=2)
        first = self.run_evolution(stopper=stopper, journal=journal)
        assert first.stopped is not None
        reference = self.leaderboard_of(first)

        # kill after the first few records, then resume with a FRESH
        # stopper instance configured identically
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:4]) + "\n")
        resumed = self.run_evolution(
            stopper=ProgressThresholdStopper(patience=2),
            journal=journal, resume=True)
        assert resumed.stopped == first.stopped
        assert self.leaderboard_of(resumed) == reference
        assert resumed.stats.replayed > 0

    @pytest.mark.slow
    def test_parallel_stop_matches_inline(self):
        inline = self.run_evolution(stopper=MaxTrialsStopper(5), seed=2)
        parallel = self.run_evolution(stopper=MaxTrialsStopper(5), seed=2,
                                      workers=2)
        assert inline.stopped == parallel.stopped
        assert self.leaderboard_of(inline) == self.leaderboard_of(parallel)

    def test_stopper_is_part_of_the_resume_identity(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        self.run_evolution(journal=journal)  # stopper-less run
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            self.run_evolution(stopper=MaxTrialsStopper(3),
                               journal=journal, resume=True)

    def test_stopperless_fingerprint_keeps_legacy_layout(self):
        task = tiny_task()
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, num_trials=2)
        scheduler = TrialScheduler(task, strategy)
        assert set(scheduler.fingerprint()) == {"task", "strategy"}

    def test_timelines_can_be_disabled(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        task = tiny_task()
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, num_trials=2)
        TrialScheduler(task, strategy, journal=str(journal),
                       timelines=False).run()
        contents = TrialJournal.read_all(journal)
        assert len(contents.trials) == 2
        assert contents.timelines == {}


class TestRunRegistry:
    def test_ingest_names_index_and_load(self, tmp_path):
        source = tmp_path / "source.jsonl"
        write_synthetic_journal(source)
        registry = RunRegistry(tmp_path / "runs")
        assert registry.names() == []

        record = registry.ingest(source)
        assert record.name.startswith("source-")
        assert registry.names() == [record.name]
        assert registry.load(record.name).name == record.name
        # a direct journal path loads without registration
        assert registry.load(str(source)).contents.trials

        row = registry.index()[0]
        assert row["strategy"] == "random"
        assert row["trials"] == 3 and row["failed"] == 0
        assert row["timelines"] == 3
        assert row["best_score"] == max(
            r.score for r in record.results())

    def test_ingest_collision_and_overwrite(self, tmp_path):
        source = tmp_path / "source.jsonl"
        write_synthetic_journal(source)
        registry = RunRegistry(tmp_path / "runs")
        registry.ingest(source, name="run")
        with pytest.raises(FileExistsError, match="already registered"):
            registry.ingest(source, name="run")
        registry.ingest(source, name="run", overwrite=True)  # explicit ok

    def test_ingest_rejects_headerless_files(self, tmp_path):
        junk = tmp_path / "junk.jsonl"
        junk.write_text("not a journal\n")
        with pytest.raises(ValueError, match="not a trial journal"):
            RunRegistry(tmp_path / "runs").ingest(junk)

    def test_unknown_name_lists_registered(self, tmp_path):
        registry = RunRegistry(tmp_path / "runs")
        with pytest.raises(FileNotFoundError, match="no run named"):
            registry.load("ghost")

    def test_diff_and_compare(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_synthetic_journal(a, seed=0)
        write_synthetic_journal(b, seed=1)
        registry = RunRegistry(tmp_path / "runs")
        registry.ingest(a, name="a")
        registry.ingest(b, name="b")

        rows = registry.diff("a", "b")
        paths = [row["path"] for row in rows]
        assert "strategy.seed" in paths and "task.dataset.seed" in paths
        assert paths == sorted(paths)

        diff = registry.compare("a", "b")
        assert not diff.same_setup
        best_a = max(r.score for r in diff.a.results())
        best_b = max(r.score for r in diff.b.results())
        assert diff.best_delta == pytest.approx(best_b - best_a)
        assert [row["trial_id"] for row in diff.shared_trials] == [0, 1, 2]
        for row in diff.shared_trials:
            assert row["delta"] == pytest.approx(row["b"] - row["a"])
        overlay = diff.curve_overlay("retrain/val_macro_f1")
        assert set(overlay) == {"a", "b"}
        assert len(overlay["a"]) == 3

    def test_identical_runs_diff_empty(self, tmp_path):
        a = tmp_path / "a.jsonl"
        write_synthetic_journal(a)
        registry = RunRegistry(tmp_path / "runs")
        registry.ingest(a, name="x")
        registry.ingest(a, name="y")
        assert registry.diff("x", "y") == []
        assert registry.compare("x", "y").same_setup

    def test_fingerprint_diff_handles_shape_changes(self):
        rows = fingerprint_diff({"a": {"b": 1}, "c": 2},
                                {"a": {"b": 2}, "d": 3})
        as_map = {row["path"]: (row["a"], row["b"]) for row in rows}
        assert as_map == {"a.b": (1, 2), "c": (2, None), "d": (None, 3)}

    def test_text_renderers(self, tmp_path):
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        write_synthetic_journal(a, seed=0,
                                stopped={"trial_id": 2, "reason": "plateau",
                                         "stopper": "progress"})
        write_synthetic_journal(b, seed=1)
        registry = RunRegistry(tmp_path / "runs")
        registry.ingest(a, name="a")
        registry.ingest(b, name="b")
        index = render_runs_index(registry.index())
        assert "progress: plateau" in index and "a" in index.split()
        assert render_runs_index([]) == "no runs registered"
        text = render_run_diff(registry.compare("a", "b"))
        assert "best delta" in text and "shared trials (3)" in text


class TestReport:
    def test_report_contains_every_section(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        write_synthetic_journal(
            journal, stopped={"trial_id": 2, "reason": "plateau",
                              "stopper": "progress"})
        html = render_report(journal)
        assert html.startswith("<!DOCTYPE html>")
        assert "<svg" in html and "polyline" in html
        assert "Leaderboard" in html
        assert "retrain/val_macro_f1" in html
        assert "worker_deaths" in html
        assert "plateau" in html  # the stopper verdict
        # self-contained: no external references whatsoever
        assert "http://" not in html.replace("http://www.w3.org", "")
        assert "<script" not in html

    def test_report_renders_journals_without_timelines(self, tmp_path):
        journal = tmp_path / "old.jsonl"
        write_synthetic_journal(journal, with_timelines=False)
        html = render_report(journal)
        assert "no timeline records" in html
        assert "Leaderboard" in html  # everything else still renders

    def test_report_is_byte_deterministic(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        write_synthetic_journal(journal)
        assert render_report(journal) == render_report(
            RunRecord.load(journal))

    def test_write_report_default_path(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        write_synthetic_journal(journal)
        out = write_report(journal)
        assert out == journal.with_suffix(".html")
        assert out.read_text(encoding="utf-8") == render_report(journal)

    def test_html_escaping(self, tmp_path):
        journal = tmp_path / "run.jsonl"
        fingerprint = write_synthetic_journal(journal)
        # smuggle markup through a free-text field: must come out escaped
        lines = journal.read_text().splitlines()
        footer = json.loads(lines[-1])
        footer["footer"]["stopped"] = {
            "trial_id": 0, "stopper": "progress",
            "reason": "<script>alert('x')</script>"}
        lines[-1] = json.dumps(footer)
        journal.write_text("\n".join(lines) + "\n")
        html = render_report(journal)
        assert "<script>" not in html
        assert "&lt;script&gt;" in html
        del fingerprint

    def test_golden_report_is_stable(self, tmp_path):
        """Byte-for-byte golden file: the report is a pure function of
        the journal, so regenerating it must reproduce the committed
        HTML exactly.  If this fails after an intentional report change,
        regenerate via tests/golden/regenerate.py."""
        from pathlib import Path

        journal = tmp_path / "fixture.jsonl"
        write_synthetic_journal(
            journal, seed=3, trials=4,
            stopped={"trial_id": 3, "reason": "plateau",
                     "stopper": "progress"})
        golden = Path(__file__).parent / "golden" / "report_fixture.html"
        assert render_report(journal) == golden.read_text(encoding="utf-8")
