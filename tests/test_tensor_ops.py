"""Gradient checks and semantics for every autograd primitive."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    SparseTensor,
    Tensor,
    absolute,
    clip,
    concat,
    elu,
    exp,
    gather_rows,
    gradcheck,
    leaky_relu,
    log,
    maximum,
    no_grad,
    relu,
    scatter_add,
    sigmoid,
    spmm,
    sqrt,
    stack,
    tanh,
    weighted_spmm,
    where,
)

RNG = np.random.default_rng(7)


def _t(shape, positive=False, lo=0.2):
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + lo
    return Tensor(data, requires_grad=True)


class TestArithmetic:
    def test_add_broadcast(self):
        a, b = _t((3, 4)), _t((4,))
        gradcheck(lambda x, y: x + y, [a, b])

    def test_sub_broadcast_scalar_like(self):
        a, b = _t((2, 3)), _t((1, 3))
        gradcheck(lambda x, y: x - y, [a, b])

    def test_mul(self):
        a, b = _t((5,)), _t((5,))
        gradcheck(lambda x, y: x * y, [a, b])

    def test_div(self):
        a, b = _t((3, 2)), _t((3, 2), positive=True)
        gradcheck(lambda x, y: x / y, [a, b])

    def test_pow(self):
        a = _t((4,), positive=True)
        gradcheck(lambda x: x ** 3, [a])

    def test_neg(self):
        a = _t((3,))
        gradcheck(lambda x: -x, [a])

    def test_radd_rsub_rmul_rdiv(self):
        a = _t((3,), positive=True)
        gradcheck(lambda x: 2.0 + x, [a])
        gradcheck(lambda x: 2.0 - x, [a])
        gradcheck(lambda x: 2.0 * x, [a])
        gradcheck(lambda x: 2.0 / x, [a])

    def test_maximum_gradient_goes_to_larger(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestUnary:
    @pytest.mark.parametrize("fn", [exp, tanh, sigmoid, relu, elu, absolute])
    def test_gradients(self, fn):
        a = _t((4, 3))
        a.data += np.sign(a.data) * 0.05  # keep away from relu/abs kinks
        gradcheck(lambda x: fn(x), [a])

    def test_log_sqrt_positive_domain(self):
        a = _t((5,), positive=True)
        gradcheck(lambda x: log(x), [a])
        gradcheck(lambda x: sqrt(x), [a])

    def test_leaky_relu_slope(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        out = leaky_relu(a, 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_clip_gradient_masked_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        clip(a, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_2d(self):
        a, b = _t((3, 4)), _t((4, 2))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matrix_vector(self):
        a, b = _t((3, 4)), _t((4,))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_matrix(self):
        a, b = _t((3,)), _t((3, 2))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_batched(self):
        a, b = _t((2, 3, 4)), _t((2, 4, 5))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_broadcast_batch(self):
        a, b = _t((2, 3, 4)), _t((4, 5))
        gradcheck(lambda x, y: x @ y, [a, b])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), ((0, 1), False)])
    def test_sum(self, axis, keepdims):
        a = _t((3, 4))
        gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean(self, axis):
        a = _t((3, 4))
        gradcheck(lambda x: x.mean(axis=axis), [a])

    def test_max_axis(self):
        a = _t((4, 5))
        gradcheck(lambda x: x.max(axis=1), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_min(self):
        a = _t((3, 4))
        gradcheck(lambda x: x.min(axis=0), [a])


class TestShaping:
    def test_reshape(self):
        a = _t((3, 4))
        gradcheck(lambda x: x.reshape(2, 6), [a])

    def test_transpose_default_and_axes(self):
        a = _t((2, 3, 4))
        gradcheck(lambda x: x.transpose(), [a])
        gradcheck(lambda x: x.transpose((1, 2, 0)), [a])

    def test_getitem_slice(self):
        a = _t((5, 3))
        gradcheck(lambda x: x[1:4], [a])

    def test_getitem_integer_array_with_duplicates(self):
        a = _t((4, 2))
        idx = np.array([0, 0, 3, 1])
        gradcheck(lambda x: gather_rows(x, idx), [a])

    def test_concat(self):
        a, b = _t((2, 3)), _t((4, 3))
        gradcheck(lambda x, y: concat([x, y], axis=0), [a, b])

    def test_stack(self):
        a, b = _t((2, 3)), _t((2, 3))
        gradcheck(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_squeeze_unsqueeze(self):
        a = _t((3, 1, 4))
        assert a.squeeze(1).shape == (3, 4)
        assert a.unsqueeze(0).shape == (1, 3, 1, 4)
        gradcheck(lambda x: x.squeeze(1).unsqueeze(2), [a])

    def test_where(self):
        a, b = _t((4,)), _t((4,))
        cond = np.array([True, False, True, False])
        gradcheck(lambda x, y: where(cond, x, y), [a, b])


class TestScatterGather:
    def test_scatter_add_matches_manual(self):
        src = Tensor(np.arange(8, dtype=float).reshape(4, 2), requires_grad=True)
        idx = np.array([0, 1, 0, 2])
        out = scatter_add(src, idx, 3)
        np.testing.assert_allclose(out.data, [[4, 6], [2, 3], [6, 7]])
        gradcheck(lambda x: scatter_add(x, idx, 3), [src])

    def test_scatter_into_empty_segment(self):
        src = _t((2, 3))
        out = scatter_add(src, np.array([0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)


class TestSparse:
    def test_spmm_gradcheck(self):
        mat = sp.random(6, 5, density=0.4, random_state=3, format="csr")
        x = _t((5, 3))
        gradcheck(lambda t: spmm(mat, t), [x])

    def test_spmm_matches_dense(self):
        mat = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        x = _t((4, 2))
        np.testing.assert_allclose(spmm(mat, x).data, mat.toarray() @ x.data)


class TestSparseTensor:
    def _random(self, rows=6, cols=5, density=0.4, seed=3):
        return SparseTensor.from_scipy(
            sp.random(rows, cols, density=density, random_state=seed,
                      format="csr"))

    def test_round_trips(self):
        mat = self._random()
        np.testing.assert_allclose(
            SparseTensor.from_dense(mat.to_dense()).to_dense(), mat.to_dense())
        np.testing.assert_allclose(mat.to_scipy().toarray(), mat.to_dense())
        np.testing.assert_allclose(mat.T.to_dense(), mat.to_dense().T)
        assert mat.T.T is mat  # transpose is cached both ways

    def test_spmm_gradcheck_matches_dense_path(self):
        mat = self._random()
        x = _t((5, 3))
        gradcheck(lambda t: spmm(mat, t), [x])
        # identical values AND identical gradients vs the dense reference
        dense = Tensor(mat.to_dense())
        x_sparse = _t((5, 3))
        x_dense = Tensor(x_sparse.data.copy(), requires_grad=True)
        out_sparse = spmm(mat, x_sparse)
        out_dense = dense @ x_dense
        np.testing.assert_allclose(out_sparse.data, out_dense.data, atol=1e-12)
        out_sparse.sum().backward()
        out_dense.sum().backward()
        np.testing.assert_allclose(x_sparse.grad, x_dense.grad, atol=1e-12)

    def test_normalizations(self):
        mat = self._random(rows=7, cols=7, density=0.3, seed=5)
        row = mat.row_normalize().row_sums()
        assert np.all((np.abs(row - 1.0) < 1e-12) | (row == 0.0))
        dense = mat.to_dense()
        deg_r = dense.sum(axis=1)
        deg_c = dense.sum(axis=0)
        inv_r = np.zeros_like(deg_r)
        inv_r[deg_r > 0] = deg_r[deg_r > 0] ** -0.5
        inv_c = np.zeros_like(deg_c)
        inv_c[deg_c > 0] = deg_c[deg_c > 0] ** -0.5
        np.testing.assert_allclose(mat.sym_normalize().to_dense(),
                                   inv_r[:, None] * dense * inv_c[None, :])

    def test_self_loops_and_restrict_columns(self):
        mat = self._random(rows=5, cols=5, density=0.3, seed=9)
        looped = mat.add_self_loops()
        np.testing.assert_allclose(np.diag(looped.to_dense()), 1.0)
        keep = np.array([True, False, True, False, True])
        expected = mat.to_dense().copy()
        expected[:, ~keep] = 0.0
        np.testing.assert_allclose(mat.restrict_columns(keep).to_dense(),
                                   expected)

    def test_weighted_spmm_gradcheck_both_operands(self):
        # duplicate (row, col) entries must sum, like multigraph edges
        rows = np.array([0, 0, 1, 2, 2, 2])
        cols = np.array([1, 1, 0, 2, 1, 2])
        pattern = SparseTensor.from_edges(rows, cols, (3, 3))
        values = _t((6,))
        x = _t((3, 4))
        gradcheck(lambda v, t: weighted_spmm(pattern, v, t), [values, x])
        out = weighted_spmm(pattern, values, x)
        expected = np.zeros((3, 4))
        for r, c, v in zip(rows, cols, values.data):
            expected[r] += v * x.data[c]
        np.testing.assert_allclose(out.data, expected)

    def test_weighted_spmm_rejects_mismatched_shapes(self):
        pattern = SparseTensor.from_edges(np.array([0, 1]), np.array([1, 2]),
                                          (2, 3))
        with pytest.raises(ValueError):
            weighted_spmm(pattern, _t((2,)), _t((4, 5)))  # 4 rows != 3 cols
        with pytest.raises(ValueError):
            weighted_spmm(pattern, _t((5,)), _t((3, 5)))  # 5 values != 2 nnz

    def test_weighted_spmm_multi_head(self):
        rows = np.array([0, 1, 1, 2])
        cols = np.array([2, 0, 2, 1])
        pattern = SparseTensor.from_edges(rows, cols, (3, 3))
        values = _t((4, 2))
        x = _t((3, 2, 3))
        gradcheck(lambda v, t: weighted_spmm(pattern, v, t), [values, x])

    def test_weighted_spmm_equals_scatter_formulation(self):
        rng = np.random.default_rng(11)
        num_nodes, num_edges = 8, 30
        src = rng.integers(0, num_nodes, size=num_edges)
        dst = rng.integers(0, num_nodes, size=num_edges)
        order = np.argsort(dst, kind="stable")
        pattern = SparseTensor.from_edges(dst[order], src[order],
                                          (num_nodes, num_nodes))
        values = Tensor(rng.normal(size=num_edges), requires_grad=True)
        x = Tensor(rng.normal(size=(num_nodes, 5)), requires_grad=True)
        sparse_out = weighted_spmm(pattern, gather_rows(values, order), x)
        scatter_out = scatter_add(
            gather_rows(x, src) * values.reshape(-1, 1), dst, num_nodes)
        np.testing.assert_allclose(sparse_out.data, scatter_out.data,
                                   atol=1e-12)


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        a = _t((3,))
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        a = _t((3,))
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_backwards(self):
        a = _t((2,))
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_diamond_graph_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2.0
        c = a * 4.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_detach_cuts_graph(self):
        a = _t((3,))
        out = (a.detach() * 2.0).sum()
        assert not out.requires_grad
