"""Gradient checks and semantics for every autograd primitive."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.tensor import (
    Tensor,
    absolute,
    clip,
    concat,
    elu,
    exp,
    gather_rows,
    gradcheck,
    leaky_relu,
    log,
    maximum,
    no_grad,
    relu,
    scatter_add,
    sigmoid,
    spmm,
    sqrt,
    stack,
    tanh,
    where,
)

RNG = np.random.default_rng(7)


def _t(shape, positive=False, lo=0.2):
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + lo
    return Tensor(data, requires_grad=True)


class TestArithmetic:
    def test_add_broadcast(self):
        a, b = _t((3, 4)), _t((4,))
        gradcheck(lambda x, y: x + y, [a, b])

    def test_sub_broadcast_scalar_like(self):
        a, b = _t((2, 3)), _t((1, 3))
        gradcheck(lambda x, y: x - y, [a, b])

    def test_mul(self):
        a, b = _t((5,)), _t((5,))
        gradcheck(lambda x, y: x * y, [a, b])

    def test_div(self):
        a, b = _t((3, 2)), _t((3, 2), positive=True)
        gradcheck(lambda x, y: x / y, [a, b])

    def test_pow(self):
        a = _t((4,), positive=True)
        gradcheck(lambda x: x ** 3, [a])

    def test_neg(self):
        a = _t((3,))
        gradcheck(lambda x: -x, [a])

    def test_radd_rsub_rmul_rdiv(self):
        a = _t((3,), positive=True)
        gradcheck(lambda x: 2.0 + x, [a])
        gradcheck(lambda x: 2.0 - x, [a])
        gradcheck(lambda x: 2.0 * x, [a])
        gradcheck(lambda x: 2.0 / x, [a])

    def test_maximum_gradient_goes_to_larger(self):
        a = Tensor([1.0, 5.0], requires_grad=True)
        b = Tensor([2.0, 3.0], requires_grad=True)
        maximum(a, b).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0])
        np.testing.assert_allclose(b.grad, [1.0, 0.0])


class TestUnary:
    @pytest.mark.parametrize("fn", [exp, tanh, sigmoid, relu, elu, absolute])
    def test_gradients(self, fn):
        a = _t((4, 3))
        a.data += np.sign(a.data) * 0.05  # keep away from relu/abs kinks
        gradcheck(lambda x: fn(x), [a])

    def test_log_sqrt_positive_domain(self):
        a = _t((5,), positive=True)
        gradcheck(lambda x: log(x), [a])
        gradcheck(lambda x: sqrt(x), [a])

    def test_leaky_relu_slope(self):
        a = Tensor([-2.0, 3.0], requires_grad=True)
        out = leaky_relu(a, 0.1)
        np.testing.assert_allclose(out.data, [-0.2, 3.0])
        out.sum().backward()
        np.testing.assert_allclose(a.grad, [0.1, 1.0])

    def test_clip_gradient_masked_outside(self):
        a = Tensor([-2.0, 0.5, 2.0], requires_grad=True)
        clip(a, 0.0, 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [0.0, 1.0, 0.0])


class TestMatmul:
    def test_2d(self):
        a, b = _t((3, 4)), _t((4, 2))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_matrix_vector(self):
        a, b = _t((3, 4)), _t((4,))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_vector_matrix(self):
        a, b = _t((3,)), _t((3, 2))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_batched(self):
        a, b = _t((2, 3, 4)), _t((2, 4, 5))
        gradcheck(lambda x, y: x @ y, [a, b])

    def test_broadcast_batch(self):
        a, b = _t((2, 3, 4)), _t((4, 5))
        gradcheck(lambda x, y: x @ y, [a, b])


class TestReductions:
    @pytest.mark.parametrize("axis,keepdims", [(None, False), (0, False),
                                               (1, True), ((0, 1), False)])
    def test_sum(self, axis, keepdims):
        a = _t((3, 4))
        gradcheck(lambda x: x.sum(axis=axis, keepdims=keepdims), [a])

    @pytest.mark.parametrize("axis", [None, 0, 1])
    def test_mean(self, axis):
        a = _t((3, 4))
        gradcheck(lambda x: x.mean(axis=axis), [a])

    def test_max_axis(self):
        a = _t((4, 5))
        gradcheck(lambda x: x.max(axis=1), [a])

    def test_max_ties_split_gradient(self):
        a = Tensor([[2.0, 2.0, 1.0]], requires_grad=True)
        a.max(axis=1).sum().backward()
        np.testing.assert_allclose(a.grad, [[0.5, 0.5, 0.0]])

    def test_min(self):
        a = _t((3, 4))
        gradcheck(lambda x: x.min(axis=0), [a])


class TestShaping:
    def test_reshape(self):
        a = _t((3, 4))
        gradcheck(lambda x: x.reshape(2, 6), [a])

    def test_transpose_default_and_axes(self):
        a = _t((2, 3, 4))
        gradcheck(lambda x: x.transpose(), [a])
        gradcheck(lambda x: x.transpose((1, 2, 0)), [a])

    def test_getitem_slice(self):
        a = _t((5, 3))
        gradcheck(lambda x: x[1:4], [a])

    def test_getitem_integer_array_with_duplicates(self):
        a = _t((4, 2))
        idx = np.array([0, 0, 3, 1])
        gradcheck(lambda x: gather_rows(x, idx), [a])

    def test_concat(self):
        a, b = _t((2, 3)), _t((4, 3))
        gradcheck(lambda x, y: concat([x, y], axis=0), [a, b])

    def test_stack(self):
        a, b = _t((2, 3)), _t((2, 3))
        gradcheck(lambda x, y: stack([x, y], axis=1), [a, b])

    def test_squeeze_unsqueeze(self):
        a = _t((3, 1, 4))
        assert a.squeeze(1).shape == (3, 4)
        assert a.unsqueeze(0).shape == (1, 3, 1, 4)
        gradcheck(lambda x: x.squeeze(1).unsqueeze(2), [a])

    def test_where(self):
        a, b = _t((4,)), _t((4,))
        cond = np.array([True, False, True, False])
        gradcheck(lambda x, y: where(cond, x, y), [a, b])


class TestScatterGather:
    def test_scatter_add_matches_manual(self):
        src = Tensor(np.arange(8, dtype=float).reshape(4, 2), requires_grad=True)
        idx = np.array([0, 1, 0, 2])
        out = scatter_add(src, idx, 3)
        np.testing.assert_allclose(out.data, [[4, 6], [2, 3], [6, 7]])
        gradcheck(lambda x: scatter_add(x, idx, 3), [src])

    def test_scatter_into_empty_segment(self):
        src = _t((2, 3))
        out = scatter_add(src, np.array([0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)
        np.testing.assert_allclose(out.data[3], 0.0)


class TestSparse:
    def test_spmm_gradcheck(self):
        mat = sp.random(6, 5, density=0.4, random_state=3, format="csr")
        x = _t((5, 3))
        gradcheck(lambda t: spmm(mat, t), [x])

    def test_spmm_matches_dense(self):
        mat = sp.random(4, 4, density=0.5, random_state=1, format="csr")
        x = _t((4, 2))
        np.testing.assert_allclose(spmm(mat, x).data, mat.toarray() @ x.data)


class TestAutogradMechanics:
    def test_no_grad_blocks_graph(self):
        a = _t((3,))
        with no_grad():
            out = a * 2.0
        assert not out.requires_grad

    def test_backward_requires_scalar_or_grad(self):
        a = _t((3,))
        with pytest.raises(RuntimeError):
            (a * 2.0).backward()

    def test_backward_on_non_grad_tensor_raises(self):
        a = Tensor([1.0, 2.0])
        with pytest.raises(RuntimeError):
            a.backward()

    def test_grad_accumulates_across_backwards(self):
        a = _t((2,))
        (a * 1.0).sum().backward()
        (a * 1.0).sum().backward()
        np.testing.assert_allclose(a.grad, [2.0, 2.0])

    def test_diamond_graph_gradient(self):
        a = Tensor([3.0], requires_grad=True)
        b = a * 2.0
        c = a * 4.0
        (b + c).sum().backward()
        np.testing.assert_allclose(a.grad, [6.0])

    def test_detach_cuts_graph(self):
        a = _t((3,))
        out = (a.detach() * 2.0).sum()
        assert not out.requires_grad
