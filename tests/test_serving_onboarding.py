"""Online node onboarding: graph append, cache surgery, overlay serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import FixedAssignmentFeatures, SearchSpace
from repro.graph import HeteroGraph
from repro.graph.adjacency import LRUCache
from repro.models import build_model
from repro.serving import (
    DatasetSpec,
    EngineConfig,
    InferenceEngine,
    ModelBundle,
    build_bundle,
    parse_relation,
)
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed


class TestLRUCacheSurgery:
    def test_lookup_and_put(self):
        cache = LRUCache(maxsize=2)
        assert cache.lookup("a") is None
        cache.put("a", 1)
        assert cache.lookup("a") == 1
        assert cache.hits == 1 and cache.misses == 1

    def test_put_evicts_oldest(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.put("c", 3)
        assert "a" not in cache and "b" in cache and "c" in cache

    def test_invalidate_is_targeted(self):
        cache = LRUCache(maxsize=8)
        for key in [("block", "a"), ("block", "b"), ("global",)]:
            cache.put(key, key)
        dropped = cache.invalidate(lambda key: key[0] == "global"
                                   or "a" in key)
        assert dropped == 2
        assert ("block", "b") in cache and len(cache) == 1


class TestAppendNode:
    def test_counts_offsets_and_edges(self, toy_graph):
        old_actor_offset = toy_graph.offset_of("actor")
        old_tag_offset = toy_graph.offset_of("tag")
        old_edges = toy_graph.num_edges(("movie", "stars", "actor"))
        new_local = toy_graph.append_node(
            "movie", {("movie", "stars", "actor"): [0, 2]})
        assert new_local == 4
        assert toy_graph.num_nodes_of("movie") == 5
        assert toy_graph.num_nodes == 10
        # types after 'movie' shift by one
        assert toy_graph.offset_of("actor") == old_actor_offset + 1
        assert toy_graph.offset_of("tag") == old_tag_offset + 1
        assert toy_graph.num_edges(("movie", "stars", "actor")) == old_edges + 2
        pairs = toy_graph.edges_local(("movie", "stars", "actor"))
        np.testing.assert_array_equal(pairs[:, -2:],
                                      [[new_local, new_local], [0, 2]])

    def test_auto_reverse_mirrors_edges(self, toy_graph):
        before = toy_graph.num_edges(("actor", "stars_rev", "movie"))
        toy_graph.append_node("movie", {("movie", "stars", "actor"): [1]})
        reverse = toy_graph.edges_local(("actor", "stars_rev", "movie"))
        assert reverse.shape[1] == before + 1
        np.testing.assert_array_equal(reverse[:, -1], [1, 4])

    def test_append_on_destination_side(self, toy_graph):
        new_local = toy_graph.append_node(
            "actor", {("movie", "stars", "actor"): [0, 3]})
        assert new_local == 3
        pairs = toy_graph.edges_local(("movie", "stars", "actor"))
        np.testing.assert_array_equal(pairs[:, -2:], [[0, 3], [3, 3]])

    def test_neighbors_see_the_new_node(self, toy_graph):
        new_local = toy_graph.append_node(
            "actor", {("movie", "stars", "actor"): [0]})
        gid = int(toy_graph.to_global("actor", np.array([new_local]))[0])
        movie0 = int(toy_graph.to_global("movie", np.array([0]))[0])
        assert gid in toy_graph.neighbors(movie0)

    def test_errors(self, toy_graph):
        with pytest.raises(KeyError, match="unknown node type"):
            toy_graph.append_node("studio", {})
        with pytest.raises(KeyError, match="unknown relation"):
            toy_graph.append_node("movie",
                                  {("movie", "likes", "actor"): [0]})
        with pytest.raises(ValueError, match="does not involve"):
            toy_graph.append_node("tag",
                                  {("movie", "stars", "actor"): [0]})
        with pytest.raises(ValueError, match="out of range"):
            toy_graph.append_node("movie",
                                  {("movie", "stars", "actor"): [99]})
        # failed validation must not mutate the graph
        assert toy_graph.num_nodes_of("movie") == 4

    def test_targeted_cache_invalidation(self, toy_graph):
        kept = toy_graph.block_adjacency("movie", "tag")
        stale = toy_graph.block_adjacency("movie", "actor")
        toy_graph.normalized_adjacency(mode="sym")
        toy_graph.append_node("actor", {("movie", "stars", "actor"): [0]})
        cache = toy_graph._norm_cache
        assert ("block", "movie", "tag", "none", False, "float64") in cache
        assert ("block", "movie", "actor", "none", False,
                "float64") not in cache
        assert ("global", "sym", False, True, "float64") not in cache
        # the surviving entry is the same object (no rebuild)
        assert toy_graph.block_adjacency("movie", "tag") is kept
        rebuilt = toy_graph.block_adjacency("movie", "actor")
        assert rebuilt is not stale
        assert rebuilt.shape == (4, 4)

    def test_pop_node_is_exact_inverse_of_append(self, toy_graph):
        edges_before = {rel: toy_graph.edges_local(rel).copy()
                        for rel in toy_graph.relations}
        offsets_before = {t: toy_graph.offset_of(t)
                          for t in toy_graph.node_types}
        toy_graph.append_node("actor", {("movie", "stars", "actor"): [0, 2]})
        removed = toy_graph.pop_node("actor")
        assert removed == 3
        assert toy_graph.num_nodes == 9
        assert toy_graph.num_nodes_of("actor") == 3
        for node_type, offset in offsets_before.items():
            assert toy_graph.offset_of(node_type) == offset
        for relation, pairs in edges_before.items():
            np.testing.assert_array_equal(toy_graph.edges_local(relation),
                                          pairs)

    def test_pop_node_refuses_to_empty_a_type(self, toy_graph):
        toy_graph.pop_node("tag")  # 2 -> 1 is fine
        with pytest.raises(ValueError, match="last node"):
            toy_graph.pop_node("tag")

    def test_copy_isolated(self, toy_graph):
        clone = toy_graph.copy()
        clone.append_node("movie", {("movie", "stars", "actor"): [0]})
        assert clone.num_nodes_of("movie") == 5
        assert toy_graph.num_nodes_of("movie") == 4
        assert toy_graph.num_edges() != clone.num_edges()


class TestParseRelation:
    def test_forms(self):
        assert parse_relation("a:likes:b") == ("a", "likes", "b")
        assert parse_relation(("a", "likes", "b")) == ("a", "likes", "b")
        with pytest.raises(ValueError):
            parse_relation("a:b")
        with pytest.raises(ValueError):
            parse_relation(("a", "b"))


@pytest.fixture(scope="module")
def mean_bundle(imdb_tiny):
    """A bundle whose searched assignment is 'mean' everywhere, so the
    inductive topology path (not the one_hot fallback) is exercised."""
    set_seed(11)
    space = SearchSpace()
    assignment = np.full(imdb_tiny.missing_global_ids.shape[0],
                         space.index("mean"), dtype=np.int64)
    features = FixedAssignmentFeatures(imdb_tiny, 32, assignment, space=space)
    model = build_model("gcn", imdb_tiny, hidden_dim=32, out_dim=32)
    NodeClassificationTrainer(model, features, imdb_tiny,
                              TrainConfig(epochs=2, patience=10)).train()
    return build_bundle(imdb_tiny, DatasetSpec("imdb", "tiny", 0), "gcn",
                        model, features, hidden_dim=32, out_dim=32)


class TestEngineOnboarding:
    @pytest.fixture()
    def engine(self, tiny_bundle):
        return InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                               EngineConfig(max_batch_size=32,
                                            cache_size=8192),
                               dataset=tiny_bundle["dataset"])

    def test_missing_type_gets_completed_attribute(self, engine):
        result = engine.onboard("actor",
                                {("movie", "stars", "actor"): [0, 1, 2]})
        assert result.node_type == "actor"
        assert result.local_id == engine.dataset.graph.num_nodes_of("actor")
        assert result.cluster is not None
        assert result.op_name in engine.bundle.op_names
        assert result.completed.shape == (engine.bundle.hidden_dim,)
        assert result.embedding is not None
        assert result.prediction is None  # actor is not the target type

    def test_target_type_gets_prediction(self, engine):
        raw_dim = engine.dataset.features["movie"].shape[1]
        raw = np.random.default_rng(0).normal(size=raw_dim)
        result = engine.onboard(
            "movie", {"movie:stars:actor": [0, 1]}, raw_features=raw)
        assert result.prediction is not None
        assert result.label == engine.bundle.label_names[result.prediction]
        assert result.logits.shape == (engine.bundle.num_classes,)

    def test_existing_predictions_unchanged(self, engine, tiny_bundle):
        n_target = engine.dataset.graph.num_nodes_of(
            engine.bundle.target_type)
        before = engine.predict(np.arange(n_target)).copy()
        np.testing.assert_array_equal(before, tiny_bundle["reference"])
        engine.onboard("actor", {("movie", "stars", "actor"): [0]})
        raw_dim = engine.dataset.features["movie"].shape[1]
        onboarded = engine.onboard(
            "movie", {"movie:stars:actor": [2]},
            raw_features=np.zeros(raw_dim))
        after = engine.predict(np.arange(n_target))
        np.testing.assert_array_equal(after, before)
        # and the overlay answers through the normal predict API
        via_predict = engine.predict([onboarded.local_id])
        assert via_predict[0] == onboarded.prediction

    def test_base_state_is_never_mutated(self, engine):
        base_graph = engine.dataset.graph
        nodes_before = base_graph.num_nodes
        features_before = engine.dataset.features["movie"]
        engine.onboard("actor", {("movie", "stars", "actor"): [0]})
        assert base_graph.num_nodes == nodes_before
        assert engine.dataset.features["movie"] is features_before

    def test_sequential_onboards_accumulate(self, engine):
        first = engine.onboard("actor", {("movie", "stars", "actor"): [0]})
        second = engine.onboard("actor", {("movie", "stars", "actor"): [1]})
        assert second.local_id == first.local_id + 1
        assert engine.num_onboarded == 2

    def test_attributed_type_requires_features(self, engine):
        with pytest.raises(ValueError, match="raw feature"):
            engine.onboard("movie", {"movie:stars:actor": [0]})
        with pytest.raises(ValueError, match="dim"):
            engine.onboard("movie", {"movie:stars:actor": [0]},
                           raw_features=np.zeros(3))

    def test_unknown_type_rejected(self, engine):
        with pytest.raises(KeyError):
            engine.onboard("studio", {})

    def test_failed_onboard_rolls_back_completely(self, engine):
        """A backbone that cannot be rebuilt mid-onboard must leave no
        ghost node behind — retries and later onboards stay consistent."""
        engine.onboard("actor", {("movie", "stars", "actor"): [0]})
        manager = engine._onboarding
        graph = manager._dataset.graph
        nodes_before = graph.num_nodes
        actors_before = graph.num_nodes_of("actor")
        labels_before = manager._dataset.labels
        h0_before = manager._h0
        # sabotage the saved weights so the updated-model rebuild fails
        removed = engine.bundle.model_state.pop("classifier.weight")
        with pytest.raises(RuntimeError, match="inductively"):
            engine.onboard("actor", {("movie", "stars", "actor"): [1]})
        assert graph.num_nodes == nodes_before
        assert graph.num_nodes_of("actor") == actors_before
        assert manager._dataset.labels is labels_before
        assert manager._h0 is h0_before
        assert engine.num_onboarded == 1
        # restore and retry: the same onboard now succeeds cleanly
        engine.bundle.model_state["classifier.weight"] = removed
        result = engine.onboard("actor", {("movie", "stars", "actor"): [1]})
        assert result.local_id == graph.num_nodes_of("actor") - 1
        assert graph.num_nodes == nodes_before + 1

    def test_mean_assignment_uses_inductive_mean_op(self, mean_bundle,
                                                    imdb_tiny):
        engine = InferenceEngine(mean_bundle, dataset=imdb_tiny)
        result = engine.onboard("actor",
                                {("movie", "stars", "actor"): [0, 1, 4]})
        assert result.op_name == "mean"
        # mean completion = mean of attributed neighbors' raw attrs @ W
        raw = imdb_tiny.features["movie"][[0, 1, 4]].mean(axis=0)
        weight = mean_bundle.features_state[
            f"ops.{SearchSpace().index('mean')}.weight"]
        np.testing.assert_allclose(result.completed, raw @ weight,
                                   rtol=1e-10, atol=1e-12)

    def test_isolated_node_falls_back_to_type_majority(self, mean_bundle,
                                                       imdb_tiny):
        engine = InferenceEngine(mean_bundle, dataset=imdb_tiny)
        result = engine.onboard("keyword", {})
        assert result.op_name == "mean"
        assert result.cluster is not None
        # no attributed neighbors → the mean op yields a zero attribute
        np.testing.assert_allclose(result.completed, 0.0, atol=1e-12)
