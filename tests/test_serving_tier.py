"""The preforked serving tier: parity, coalescing, writes, recovery.

Everything here runs REAL worker processes forked from a template
engine over the mmap-backed tiny bundle — the tests talk to the tier
exclusively through its HTTP front, like a client would.  The oracle is
always the single-process path: ``tiny_bundle["reference"]`` for base
predictions, a local :class:`InferenceEngine` for onboarding parity.
"""

from __future__ import annotations

import contextlib
import json
import multiprocessing
import os
import signal
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.faults import FaultPlan, FaultRule, armed
from repro.serving import (
    EngineConfig,
    FrontendConfig,
    InferenceEngine,
    ModelBundle,
    ServingTier,
    TierConfig,
)
from repro.telemetry import parse_prometheus

pytestmark = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="the serving tier needs the fork start method")

# generous per-request budget: these tests run on arbitrarily slow CI
DEADLINE_MS = 60_000.0


@contextlib.contextmanager
def _tier(bundle_path, *, workers=2, wal_path=None, mmap=True,
          frontend=None, engine=None):
    tier = ServingTier(
        bundle_path,
        TierConfig(workers=workers, mmap=mmap, wal_path=wal_path),
        engine_config=engine or EngineConfig(max_batch_size=64,
                                             cache_size=4096),
        frontend_config=frontend or FrontendConfig(deadline_ms=DEADLINE_MS))
    tier.start_background()
    try:
        yield tier
    finally:
        tier.shutdown()


def _post(url, path, payload, timeout=120):
    body = json.dumps(payload).encode()
    request = urllib.request.Request(
        url + path, data=body,
        headers={"Content-Type": "application/json"})
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read()), dict(
                response.headers)
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), dict(error.headers)


def _get(url, path, timeout=120):
    try:
        with urllib.request.urlopen(url + path, timeout=timeout) as response:
            return response.status, response.read()
    except urllib.error.HTTPError as error:
        return error.code, error.read()


def _predictions(url, node_ids):
    status, body, _ = _post(url, "/predict",
                            {"node_ids": [int(i) for i in node_ids]})
    assert status == 200, body
    assert body["node_ids"] == [int(i) for i in node_ids]
    return body["predictions"]


def _onboard_movie(url, dataset, actor_ids, fill):
    raw_dim = dataset.features["movie"].shape[1]
    status, body, _ = _post(url, "/onboard", {
        "node_type": "movie",
        "edges": {"movie:stars:actor": [int(i) for i in actor_ids]},
        "raw_features": [fill] * raw_dim})
    return status, body


class TestTierServing:
    def test_parity_with_single_process_reference(self, tiny_bundle):
        reference = tiny_bundle["reference"]
        with _tier(tiny_bundle["path"]) as tier:
            served = _predictions(tier.url, range(len(reference)))
        np.testing.assert_array_equal(np.asarray(served), reference)

    def test_concurrent_clients_all_get_correct_answers(self, tiny_bundle):
        reference = tiny_bundle["reference"]
        ids = [[int(i) for i in np.random.default_rng(worker).integers(
            0, len(reference), size=5)] for worker in range(8)]
        results = [None] * len(ids)
        with _tier(tiny_bundle["path"]) as tier:
            def query(slot):
                results[slot] = _predictions(tier.url, ids[slot])
            threads = [threading.Thread(target=query, args=(slot,))
                       for slot in range(len(ids))]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=120)
        for slot, batch in enumerate(ids):
            assert results[slot] == [int(reference[i]) for i in batch]

    def test_http_error_mapping(self, tiny_bundle):
        with _tier(tiny_bundle["path"]) as tier:
            url = tier.url
            assert _get(url, "/healthz")[0] == 200
            assert _get(url, "/readyz")[0] == 200
            assert _get(url, "/nope")[0] == 404
            assert _get(url, "/predict")[0] == 405  # GET on a POST path
            status, body, _ = _post(url, "/predict", {"node_ids": []})
            assert status == 400
            status, body, _ = _post(url, "/predict",
                                    {"node_ids": [10 ** 9]})
            assert status == 400
            assert "out of range" in body["error"]
            # still serving after every error
            assert _predictions(url, [0]) is not None

    def test_oversized_body_is_rejected(self, tiny_bundle):
        frontend = FrontendConfig(deadline_ms=DEADLINE_MS,
                                  max_body_bytes=256)
        with _tier(tiny_bundle["path"], frontend=frontend) as tier:
            status, body, _ = _post(tier.url, "/predict",
                                    {"node_ids": list(range(1000))})
            assert status == 413

    def test_queue_full_sheds_with_retry_after(self, tiny_bundle):
        frontend = FrontendConfig(deadline_ms=DEADLINE_MS, max_queue=2)
        with _tier(tiny_bundle["path"], workers=1,
                   frontend=frontend) as tier:
            status, body, headers = _post(tier.url, "/predict",
                                          {"node_ids": [0, 1, 2]})
            assert status == 503
            assert body["reason"] == "queue-full"
            assert "Retry-After" in headers
            # a request within the bound still succeeds
            assert _predictions(tier.url, [0, 1]) == [
                int(tiny_bundle["reference"][0]),
                int(tiny_bundle["reference"][1])]

    def test_metrics_aggregates_worker_shards(self, tiny_bundle):
        with _tier(tiny_bundle["path"]) as tier:
            _predictions(tier.url, [0, 1, 2])
            _predictions(tier.url, [3])
            status, text = _get(tier.url, "/metrics")
            assert status == 200
            parsed = parse_prometheus(text.decode())
        samples = parsed["samples"]
        engine_queries = sum(
            value for (name, _), value in samples.items()
            if name == "engine_queries_total")
        assert engine_queries >= 4  # worker shards made it to the front
        assert samples[("tier_workers_alive", ())] == 2.0
        assert samples[("tier_batches_total", ())] >= 2.0
        http_ok = sum(
            value for (name, labels), value in samples.items()
            if name == "http_requests_total"
            and ("status", "200") in labels)
        assert http_ok >= 2.0

    def test_stats_reports_tier_shape(self, tiny_bundle):
        with _tier(tiny_bundle["path"]) as tier:
            status, text = _get(tier.url, "/stats")
            assert status == 200
            stats = json.loads(text)
        assert stats["tier"]["workers"] == 2
        assert stats["tier"]["writer_index"] == 0
        assert stats["tier"]["alive"] == 2
        assert len(stats["tier"]["pids"]) == 2
        assert len(set(stats["tier"]["pids"])) == 2  # real distinct procs
        roles = [worker.get("role") for worker in stats["workers"]]
        assert roles == ["writer", "reader"]


class TestCoalescing:
    def test_take_batch_coalesces_and_respects_max_batch(self):
        """Unit-level: the dispatch queue's batching rules, no processes."""
        from repro.serving.admission import Deadline
        from repro.serving.frontend import _Entry, TierFrontend

        class _StubTier:
            config = TierConfig(workers=1)

        front = TierFrontend(_StubTier(),
                             config=FrontendConfig(max_batch=4))

        async def scenario():
            import asyncio

            front._wake = asyncio.Event()
            loop = asyncio.get_event_loop()
            entries = [
                _Entry([0, 1, 2], loop.create_future(), None),
                _Entry([3, 4], loop.create_future(), None),
                _Entry([5], loop.create_future(), None),
                _Entry([6], loop.create_future(),
                       Deadline.after_ms(0.0)),  # expired in the queue
                _Entry([7], loop.create_future(), None),
            ]
            for entry in entries:
                front._enqueue(entry)
            batches = [await front._take_batch(),
                       await front._take_batch()]
            return entries, batches

        import asyncio

        entries, batches = asyncio.run(scenario())
        # [0,1,2] rides alone (adding [3,4] would exceed max_batch=4);
        # the expired entry is dropped at dispatch-pop, not shipped
        assert [[e.ids for e in batch] for batch in batches] == [
            [[0, 1, 2]], [[3, 4], [5], [7]]]
        assert entries[3].future.done()
        outcome, _ = entries[3].future.result()
        assert outcome == "deadline"  # answered 504 at dispatch-pop

    def test_slow_worker_coalesces_concurrent_requests(self, tiny_bundle):
        """Integration: with ONE worker slowed by an injected delay,
        requests that arrive while a batch is in flight must ride the
        next micro-batch together instead of going one-by-one."""
        plan = FaultPlan([FaultRule(site="tier.worker.loop",
                                    action="delay", latency_ms=400.0,
                                    keys=("predict",), max_hits=2)],
                         seed=3)
        queries = 8
        with armed(plan):
            with _tier(tiny_bundle["path"], workers=1) as tier:
                threads = [threading.Thread(
                    target=_predictions, args=(tier.url, [slot]))
                    for slot in range(queries)]
                for thread in threads:
                    thread.start()
                    time.sleep(0.02)  # all land inside the first delay
                for thread in threads:
                    thread.join(timeout=120)
                status, text = _get(tier.url, "/metrics")
        samples = parse_prometheus(text.decode())["samples"]
        batches = samples[("tier_batches_total", ())]
        assert samples[("tier_batch_queries_count", ())] == batches
        assert batches < queries  # strictly fewer batches than queries
        assert samples[("tier_batch_queries_sum", ())] == queries


class TestOnboarding:
    def test_read_your_writes_through_every_worker(self, tiny_bundle):
        dataset = tiny_bundle["dataset"]
        reference = tiny_bundle["reference"]
        with _tier(tiny_bundle["path"], workers=2) as tier:
            before = _predictions(tier.url, range(len(reference)))
            status, onboarded = _onboard_movie(tier.url, dataset,
                                               [0, 1], 0.25)
            assert status == 200, onboarded
            new_id = onboarded["node_id"]
            assert new_id == len(reference)
            # every worker serves the new node immediately — far more
            # probes than workers, so each worker answers at least once
            for _ in range(2 * tier.config.workers):
                assert _predictions(tier.url, [new_id]) == [
                    onboarded["prediction"]]
            # and the base predictions never moved
            after = _predictions(tier.url, range(len(reference)))
            assert after == before

    def test_onboard_matches_single_process_engine(self, tiny_bundle):
        dataset = tiny_bundle["dataset"]
        raw_dim = dataset.features["movie"].shape[1]
        local = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                dataset=dataset)
        expected = local.onboard("movie", {"movie:stars:actor": [0, 1]},
                                 raw_features=np.full(raw_dim, 0.25))
        local.close()
        with _tier(tiny_bundle["path"], workers=2) as tier:
            status, onboarded = _onboard_movie(tier.url, dataset,
                                               [0, 1], 0.25)
            assert status == 200
            assert onboarded["prediction"] == expected.prediction
            assert onboarded["label"] == expected.label
            assert onboarded["node_id"] == expected.local_id
            served = _predictions(tier.url, [onboarded["node_id"]])
            assert served == [expected.prediction]

    def test_onboard_validation_errors_are_client_errors(self, tiny_bundle):
        with _tier(tiny_bundle["path"]) as tier:
            status, body, _ = _post(tier.url, "/onboard", {})
            assert status == 400
            status, body, _ = _post(tier.url, "/onboard",
                                    {"node_type": "movie",
                                     "edges": {"movie:stars:actor": [0]}})
            assert status == 400  # attributed type needs raw features
            assert "raw feature" in body["error"]
            # the writer is unharmed
            assert _predictions(tier.url, [0]) is not None


class TestRecovery:
    @staticmethod
    def _wait_alive(url, want, timeout_s=60.0):
        deadline = time.monotonic() + timeout_s
        while time.monotonic() < deadline:
            stats = json.loads(_get(url, "/stats")[1])
            if stats["tier"]["alive"] >= want:
                return stats
            time.sleep(0.1)
        raise AssertionError(f"tier never returned to {want} workers")

    def test_reader_death_is_transparent_to_clients(self, tiny_bundle,
                                                    tmp_path):
        dataset = tiny_bundle["dataset"]
        reference = tiny_bundle["reference"]
        wal = tmp_path / "onboard.wal"
        with _tier(tiny_bundle["path"], workers=2,
                   wal_path=wal) as tier:
            status, onboarded = _onboard_movie(tier.url, dataset,
                                               [0, 2], 0.5)
            assert status == 200
            new_id = onboarded["node_id"]
            every_id = list(range(len(reference))) + [new_id]
            leaderboard = _predictions(tier.url, every_id)

            reader_pid = json.loads(
                _get(tier.url, "/stats")[1])["tier"]["pids"][1]
            os.kill(reader_pid, signal.SIGKILL)
            # clients keep getting answers THROUGH the death window —
            # in-flight batches requeue to the surviving worker
            for _ in range(6):
                assert _predictions(tier.url, [new_id, 0]) == [
                    onboarded["prediction"], int(reference[0])]
            stats = self._wait_alive(tier.url, 2)
            assert stats["tier"]["deaths"] >= 1
            assert stats["tier"]["respawns"] >= 1
            assert reader_pid not in stats["tier"]["pids"]
            # the respawned reader inherited the overlay from the WAL:
            # the full leaderboard (base + onboarded) is unchanged
            for _ in range(4):
                assert _predictions(tier.url, every_id) == leaderboard

    def test_writer_death_recovers_from_wal(self, tiny_bundle, tmp_path):
        dataset = tiny_bundle["dataset"]
        wal = tmp_path / "onboard.wal"
        with _tier(tiny_bundle["path"], workers=2,
                   wal_path=wal) as tier:
            status, first = _onboard_movie(tier.url, dataset, [0], 0.25)
            assert status == 200

            writer_pid = json.loads(
                _get(tier.url, "/stats")[1])["tier"]["pids"][0]
            os.kill(writer_pid, signal.SIGKILL)
            # the onboard that catches the death gets an honest 503;
            # the retry lands on the respawned writer, which replayed
            # the WAL (sequential local ids prove nothing was lost)
            deadline = time.monotonic() + 60.0
            while True:
                status, second = _onboard_movie(tier.url, dataset,
                                                [1], 0.75)
                if status == 200:
                    break
                assert status == 503
                assert time.monotonic() < deadline
                time.sleep(0.2)
            assert second["node_id"] == first["node_id"] + 1
            served = _predictions(
                tier.url, [first["node_id"], second["node_id"]])
            assert served == [first["prediction"], second["prediction"]]

    def test_respawn_can_be_disabled(self, tiny_bundle):
        tier = ServingTier(
            tiny_bundle["path"],
            TierConfig(workers=2, respawn=False),
            frontend_config=FrontendConfig(deadline_ms=DEADLINE_MS))
        tier.start_background()
        try:
            reader_pid = json.loads(
                _get(tier.url, "/stats")[1])["tier"]["pids"][1]
            os.kill(reader_pid, signal.SIGKILL)
            # traffic still flows on the survivor; capacity just drops
            for _ in range(4):
                assert _predictions(tier.url, [0]) is not None
            stats = json.loads(_get(tier.url, "/stats")[1])
            assert stats["tier"]["alive"] == 1
            assert stats["tier"]["respawns"] == 0
        finally:
            tier.shutdown()

    def test_fork_fault_on_respawn_retries_within_budget(self, tiny_bundle):
        """A respawn attempt that fails AT FORK (injected) consumes
        respawn budget but the front keeps retrying until one sticks.
        ``after=2`` spares the two boot-time forks; the parent-side
        visit counter makes the THIRD fork — the first respawn — fail."""
        plan = FaultPlan([FaultRule(site="tier.fork", action="raise",
                                    after=2, max_hits=1)],
                         seed=5)
        with armed(plan, export_env=False):
            with _tier(tiny_bundle["path"], workers=2) as tier:
                reader_pid = json.loads(
                    _get(tier.url, "/stats")[1])["tier"]["pids"][1]
                os.kill(reader_pid, signal.SIGKILL)
                for _ in range(4):
                    assert _predictions(tier.url, [0]) is not None
                stats = TestRecovery._wait_alive(tier.url, 2)
        # the first respawn hit the fork fault, the second made it
        assert stats["tier"]["deaths"] >= 1
        assert stats["tier"]["respawns"] >= 1
        assert stats["tier"]["spawned_total"] == 3


class TestEagerMode:
    def test_tier_works_without_mmap(self, tiny_bundle):
        reference = tiny_bundle["reference"]
        with _tier(tiny_bundle["path"], mmap=False) as tier:
            served = _predictions(tier.url, range(len(reference)))
        np.testing.assert_array_equal(np.asarray(served), reference)
