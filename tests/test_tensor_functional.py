"""Tests for NN functional ops: softmax family, losses, dropout, segments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import (
    Tensor,
    binary_cross_entropy_with_logits,
    cross_entropy,
    dropout,
    gradcheck,
    l2_normalize,
    log_softmax,
    nll_loss,
    one_hot,
    segment_mean,
    segment_softmax,
    segment_sum,
    segment_weighted_mean,
    softmax,
)
from repro.tensor.functional import layer_norm, segment_max_data

RNG = np.random.default_rng(11)


def _t(shape, positive=False):
    data = RNG.normal(size=shape)
    if positive:
        data = np.abs(data) + 0.2
    return Tensor(data, requires_grad=True)


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = _t((6, 4))
        np.testing.assert_allclose(softmax(x).data.sum(axis=-1), 1.0)

    def test_gradcheck(self):
        x = _t((3, 5))
        gradcheck(lambda t: softmax(t, axis=-1), [x])
        gradcheck(lambda t: softmax(t, axis=0), [x])

    def test_log_softmax_consistency(self):
        x = _t((4, 3))
        np.testing.assert_allclose(np.exp(log_softmax(x).data),
                                   softmax(x).data, atol=1e-12)
        gradcheck(lambda t: log_softmax(t), [x])

    def test_stability_large_values(self):
        x = Tensor([[1000.0, 1000.0, 999.0]])
        out = softmax(x).data
        assert np.all(np.isfinite(out))
        np.testing.assert_allclose(out.sum(), 1.0)


class TestLosses:
    def test_cross_entropy_matches_manual(self):
        logits = Tensor(np.log(np.array([[0.7, 0.2, 0.1], [0.1, 0.8, 0.1]])))
        loss = cross_entropy(logits, np.array([0, 1]))
        np.testing.assert_allclose(loss.item(),
                                   -0.5 * (np.log(0.7) + np.log(0.8)),
                                   rtol=1e-10)

    @pytest.mark.parametrize("reduction", ["mean", "sum", "none"])
    def test_cross_entropy_gradcheck(self, reduction):
        logits = _t((5, 4))
        targets = np.array([0, 1, 2, 3, 1])
        gradcheck(lambda t: cross_entropy(t, targets, reduction=reduction)
                  if reduction != "none"
                  else cross_entropy(t, targets, reduction="none").sum(),
                  [logits])

    def test_nll_agrees_with_cross_entropy(self):
        logits = _t((4, 3))
        targets = np.array([2, 0, 1, 1])
        ce = cross_entropy(logits, targets)
        nll = nll_loss(log_softmax(logits), targets)
        np.testing.assert_allclose(ce.item(), nll.item(), rtol=1e-12)

    def test_bce_matches_manual_and_grad(self):
        logits = _t((8,))
        targets = (RNG.random(8) > 0.5).astype(float)
        loss = binary_cross_entropy_with_logits(logits, targets)
        probs = 1.0 / (1.0 + np.exp(-logits.data))
        manual = -(targets * np.log(probs) + (1 - targets) * np.log1p(-probs))
        np.testing.assert_allclose(loss.item(), manual.mean(), rtol=1e-8)
        gradcheck(lambda t: binary_cross_entropy_with_logits(t, targets),
                  [logits])

    def test_bce_stable_at_extreme_logits(self):
        logits = Tensor([1000.0, -1000.0], requires_grad=True)
        loss = binary_cross_entropy_with_logits(logits, np.array([1.0, 0.0]))
        assert np.isfinite(loss.item())
        assert loss.item() < 1e-6


class TestDropout:
    def test_eval_mode_identity(self):
        x = _t((10, 10))
        np.testing.assert_array_equal(dropout(x, 0.5, training=False).data,
                                      x.data)

    def test_scaling_preserves_expectation(self):
        x = Tensor(np.ones((200, 200)))
        out = dropout(x, 0.3, training=True)
        assert abs(out.data.mean() - 1.0) < 0.02

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            dropout(_t((2,)), 1.0)

    def test_gradient_respects_mask(self):
        x = _t((50,))
        out = dropout(x, 0.5, training=True)
        out.sum().backward()
        dropped = out.data == 0
        np.testing.assert_allclose(x.grad[dropped], 0.0)


class TestSegments:
    def test_segment_sum_and_mean(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        seg = np.array([0, 0, 1])
        np.testing.assert_allclose(segment_sum(x, seg, 2).data, [[2, 4], [4, 5]])
        np.testing.assert_allclose(segment_mean(x, seg, 2).data, [[1, 2], [4, 5]])

    def test_segment_mean_empty_segment_zero(self):
        x = _t((2, 3))
        out = segment_mean(x, np.array([0, 2]), 4)
        np.testing.assert_allclose(out.data[1], 0.0)

    def test_segment_softmax_sums_to_one_per_segment(self):
        x = _t((7, 3))
        seg = np.array([0, 0, 1, 1, 1, 2, 2])
        out = segment_softmax(x, seg, 3)
        for s in range(3):
            np.testing.assert_allclose(out.data[seg == s].sum(axis=0), 1.0,
                                       rtol=1e-9)

    def test_segment_softmax_gradcheck(self):
        x = _t((6, 2))
        seg = np.array([0, 0, 1, 1, 2, 2])
        gradcheck(lambda t: segment_softmax(t, seg, 3), [x])

    def test_segment_softmax_single_member_is_one(self):
        x = _t((3,))
        out = segment_softmax(x, np.array([0, 1, 2]), 3)
        np.testing.assert_allclose(out.data, 1.0)

    def test_segment_max_data(self):
        x = np.array([[1.0], [5.0], [3.0]])
        out = segment_max_data(x, np.array([0, 0, 1]), 2)
        np.testing.assert_allclose(out, [[5.0], [3.0]])

    def test_segment_weighted_mean(self):
        values = Tensor(np.array([[2.0], [4.0]]), requires_grad=True)
        weights = Tensor(np.array([[1.0], [3.0]]), requires_grad=True)
        out = segment_weighted_mean(values, weights, np.array([0, 0]), 1)
        np.testing.assert_allclose(out.data, [[3.5]])
        gradcheck(lambda v, w: segment_weighted_mean(v, w, np.array([0, 0]), 1),
                  [values, weights])


class TestNormalization:
    def test_l2_normalize_unit_rows(self):
        x = _t((5, 4))
        norms = np.linalg.norm(l2_normalize(x).data, axis=-1)
        np.testing.assert_allclose(norms, 1.0, rtol=1e-8)

    def test_l2_normalize_gradcheck(self):
        x = _t((3, 4))
        gradcheck(lambda t: l2_normalize(t), [x])

    def test_layer_norm_zero_mean_unit_var(self):
        x = _t((6, 8))
        w = Tensor(np.ones(8))
        b = Tensor(np.zeros(8))
        out = layer_norm(x, w, b).data
        np.testing.assert_allclose(out.mean(axis=-1), 0.0, atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), 1.0, rtol=1e-2)

    def test_layer_norm_gradcheck(self):
        x = _t((4, 5))
        w = Tensor(RNG.normal(size=5), requires_grad=True)
        b = Tensor(RNG.normal(size=5), requires_grad=True)
        gradcheck(lambda t, ww, bb: layer_norm(t, ww, bb), [x, w, b])


class TestOneHot:
    def test_one_hot_encoding(self):
        out = one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_allclose(out, np.eye(3)[[0, 2, 1]])
