"""Tests for the autotune subsystem: strategies, scheduler, journal, export."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.autotune import (
    DatasetRef,
    GridSearch,
    OneShotDARTS,
    RandomSearch,
    RegularizedEvolution,
    SuccessiveHalving,
    TrialJournal,
    TrialResult,
    TrialScheduler,
    TuneTask,
    available_strategies,
    best_assignment,
    build_strategy,
    execute_trial,
    export_best,
    slot_labels,
)
from repro.completion import DEFAULT_SPACE, SearchSpace, available_ops
from repro.core import AutoACConfig, evaluate_architecture
from repro.serving import ModelBundle
from repro.training import TrainConfig, derive_seed, set_seed, set_trial_seed


def tiny_task(**overrides) -> TuneTask:
    defaults = dict(dataset=DatasetRef("imdb", "tiny", 0), model_name="gcn",
                    hidden_dim=16, out_dim=16, num_slots=4, max_budget=4)
    defaults.update(overrides)
    return TuneTask(**defaults)


def completed(trial, score: float) -> TrialResult:
    return TrialResult(trial_id=trial.trial_id, score=score, seed=trial.seed,
                       rung=trial.rung, ops=trial.ops)


class TestSeedDerivation:
    def test_deterministic_and_distinct(self):
        assert derive_seed(7, 3) == derive_seed(7, 3)
        seeds = {derive_seed(7, i) for i in range(100)}
        assert len(seeds) == 100  # distinct per trial id
        assert derive_seed(7, 3) != derive_seed(8, 3)

    def test_negative_base_seed_is_folded(self):
        assert derive_seed(-1, 2) == derive_seed(-1 % 2 ** 32, 2)

    def test_set_trial_seed_seeds_all_rngs(self):
        from repro.tensor.random import random_values

        returned = set_trial_seed(5, 11)
        assert returned == derive_seed(5, 11)
        first_np = np.random.random(3)
        first_tensor = random_values((3,)).copy()
        set_trial_seed(5, 11)
        np.testing.assert_array_equal(first_np, np.random.random(3))
        np.testing.assert_array_equal(first_tensor, random_values((3,)))


class TestRegistry:
    def test_available_contains_all(self):
        names = available_strategies()
        for expected in ("random", "evolution", "asha", "darts", "grid"):
            assert expected in names

    def test_unknown_strategy_is_clear_valueerror(self):
        with pytest.raises(ValueError, match="unknown strategy 'bogus'"):
            build_strategy("bogus", num_slots=4, num_ops=4, max_budget=8)

    def test_build_passes_kwargs(self):
        strategy = build_strategy("random", num_slots=4, num_ops=4,
                                  max_budget=8, num_trials=3)
        assert strategy.num_trials == 3


class TestRandomSearch:
    def test_one_batch_then_done(self):
        s = RandomSearch(num_slots=4, num_ops=4, max_budget=8, seed=0,
                         num_trials=5)
        batch = s.ask()
        assert len(batch) == 5
        assert all(t.budget == 8 for t in batch)
        assert all(0 <= o < 4 for t in batch for o in t.ops)
        assert [t.trial_id for t in batch] == list(range(5))
        assert s.ask() == [] and s.is_done()

    def test_same_seed_same_trials(self):
        ops = lambda seed: [t.ops for t in RandomSearch(
            num_slots=4, num_ops=4, max_budget=8, seed=seed,
            num_trials=4).ask()]
        assert ops(3) == ops(3)
        assert ops(3) != ops(4)

    def test_trial_seeds_are_derived(self):
        s = RandomSearch(num_slots=4, num_ops=4, max_budget=8, seed=9,
                         num_trials=2)
        for trial in s.ask():
            assert trial.seed == derive_seed(9, trial.trial_id)


class TestRegularizedEvolution:
    def make(self, **kw):
        defaults = dict(num_slots=6, num_ops=4, max_budget=8, seed=0,
                        num_trials=12, population_size=4, sample_size=2,
                        batch_size=3)
        defaults.update(kw)
        return RegularizedEvolution(**defaults)

    def run_synthetic(self, strategy, score_fn):
        seen = []
        while True:
            batch = strategy.ask()
            if not batch:
                break
            for trial in batch:
                seen.append(trial)
                strategy.tell(trial, completed(trial, score_fn(trial)))
        return seen

    def test_children_mutate_one_slot(self):
        s = self.make()
        trials = self.run_synthetic(s, lambda t: float(sum(t.ops)))
        assert len(trials) == 12
        by_id = {t.trial_id: t for t in trials}
        children = [t for t in trials if t.parent_id is not None]
        assert children, "evolution produced no mutated children"
        for child in children:
            parent = by_id[child.parent_id]
            diff = sum(a != b for a, b in zip(child.ops, parent.ops))
            assert diff == 1

    def test_population_ages_out(self):
        s = self.make()
        self.run_synthetic(s, lambda t: 0.5)
        assert len(s.population) == 4  # capped at population_size

    def test_failed_trials_never_enter_population(self):
        s = self.make()
        batch = s.ask()
        for trial in batch:
            result = TrialResult(trial_id=trial.trial_id, score=None,
                                 status="failed", seed=trial.seed)
            s.tell(trial, result)
        assert s.population == []
        assert all(t.parent_id is None for t in s.ask())  # random fallback

    def test_invalid_params(self):
        with pytest.raises(ValueError, match="population_size"):
            self.make(population_size=1)
        with pytest.raises(ValueError, match="sample_size"):
            self.make(sample_size=9)
        with pytest.raises(ValueError, match="num_trials"):
            self.make(num_trials=2)


class TestSuccessiveHalving:
    def test_budget_ladder(self):
        s = SuccessiveHalving(num_slots=4, num_ops=4, max_budget=40, seed=0,
                              num_trials=8, eta=2, min_budget=5)
        assert s.budgets == [5, 10, 20, 40]

    def test_derived_min_budget(self):
        s = SuccessiveHalving(num_slots=4, num_ops=4, max_budget=32, seed=0,
                              num_trials=8, eta=2)
        assert s.budgets[0] == 1 and s.budgets[-1] == 32

    def test_rung_sizes_and_promotion_of_best(self):
        s = SuccessiveHalving(num_slots=4, num_ops=4, max_budget=8, seed=0,
                              num_trials=4, eta=2, min_budget=2)
        rung0 = s.ask()
        assert [t.budget for t in rung0] == [2, 2, 2, 2]
        # craft scores: trial 2 best, trial 0 second
        scores = {0: 0.8, 1: 0.1, 2: 0.9, 3: 0.2}
        for trial in rung0:
            s.tell(trial, completed(trial, scores[trial.trial_id]))
        rung1 = s.ask()
        assert [t.budget for t in rung1] == [4, 4]
        assert [t.parent_id for t in rung1] == [2, 0]  # best first
        # promotions keep the parent's ops and seed (budget-only change)
        by_id = {t.trial_id: t for t in rung0}
        for child in rung1:
            assert child.ops == by_id[child.parent_id].ops
            assert child.seed == by_id[child.parent_id].seed
        for trial in rung1:
            s.tell(trial, completed(trial, 0.5))
        rung2 = s.ask()
        assert [t.budget for t in rung2] == [8]
        s.tell(rung2[0], completed(rung2[0], 0.6))
        assert s.ask() == [] and s.is_done()

    def test_all_failed_rung_ends_search(self):
        s = SuccessiveHalving(num_slots=4, num_ops=4, max_budget=8, seed=0,
                              num_trials=2, eta=2, min_budget=2)
        for trial in s.ask():
            s.tell(trial, TrialResult(trial_id=trial.trial_id, score=None,
                                      status="failed", seed=trial.seed))
        assert s.ask() == []


class TestOneShotAndGrid:
    def test_darts_is_single_trial(self):
        s = OneShotDARTS(num_slots=4, num_ops=4, max_budget=8, seed=0)
        batch = s.ask()
        assert len(batch) == 1
        assert batch[0].ops is None and batch[0].budget is None
        assert s.ask() == []

    def test_grid_orders_values_and_uses_base_seed(self):
        values = [{"num_clusters": 2}, {"num_clusters": 4}]
        s = GridSearch(num_slots=4, num_ops=4, max_budget=8, seed=7,
                       values=values)
        batch = s.ask()
        assert [t.params["overrides"] for t in batch] == values
        assert all(t.seed == 7 for t in batch)

    def test_grid_requires_values(self):
        with pytest.raises(ValueError, match="non-empty"):
            GridSearch(num_slots=4, num_ops=4, max_budget=8, values=[])


class TestSlotLabels:
    def test_deterministic_and_balanced(self, imdb_tiny):
        labels = slot_labels(imdb_tiny, 4)
        again = slot_labels(imdb_tiny, 4)
        np.testing.assert_array_equal(labels, again)
        assert labels.shape == imdb_tiny.missing_global_ids.shape
        counts = np.bincount(labels, minlength=4)
        assert counts.max() - counts.min() <= 1

    def test_capped_at_missing_count(self, imdb_tiny):
        n_missing = imdb_tiny.missing_global_ids.shape[0]
        labels = slot_labels(imdb_tiny, n_missing + 50)
        assert labels.max() == n_missing - 1


class TestEvaluateArchitecture:
    def test_fixed_assignment(self, imdb_tiny):
        rng = np.random.default_rng(0)
        assignment = rng.integers(
            0, 4, size=imdb_tiny.missing_global_ids.shape[0])
        ev = evaluate_architecture(imdb_tiny, assignment, "gcn", budget=3,
                                   hidden_dim=16, out_dim=16, seed=0)
        assert 0.0 <= ev.val_macro_f1 <= 1.0
        assert ev.epochs_run <= 3
        assert ev.artifacts is None and ev.search is None
        assert abs(sum(ev.op_distribution().values()) - 1.0) < 1e-9

    def test_keep_artifacts(self, imdb_tiny):
        assignment = np.zeros(imdb_tiny.missing_global_ids.shape[0],
                              dtype=np.int64)
        ev = evaluate_architecture(imdb_tiny, assignment, "gcn", budget=2,
                                   hidden_dim=16, out_dim=16, seed=0,
                                   keep_artifacts=True)
        assert ev.artifacts is not None
        assert ev.artifacts.model is not None

    def test_one_shot_search_path(self, imdb_tiny):
        config = AutoACConfig(hidden_dim=16, out_dim=16, search_epochs=2,
                              patience=10, warmup_epochs=1, num_clusters=4,
                              retrain=TrainConfig(epochs=2, patience=5))
        ev = evaluate_architecture(imdb_tiny, None, "gcn",
                                   search_config=config, seed=0)
        assert ev.search is not None
        assert ev.assignment.shape == imdb_tiny.missing_global_ids.shape

    def test_one_shot_default_config_keeps_model_kwargs(self, imdb_tiny):
        # without an explicit search_config the caller's model kwargs must
        # reach both the search and the retrain (bogus kwargs would raise)
        with pytest.raises(TypeError):
            evaluate_architecture(imdb_tiny, None, "gat", budget=1,
                                  hidden_dim=16, out_dim=16, seed=0,
                                  bogus_kwarg=1)

    def test_bad_assignment_shapes(self, imdb_tiny):
        with pytest.raises(ValueError, match="one op per"):
            evaluate_architecture(imdb_tiny, np.zeros(3, dtype=np.int64),
                                  "gcn", budget=2)
        bad = np.full(imdb_tiny.missing_global_ids.shape[0], 99,
                      dtype=np.int64)
        with pytest.raises(ValueError, match="op indices"):
            evaluate_architecture(imdb_tiny, bad, "gcn", budget=2)

    def test_determinism(self, imdb_tiny):
        assignment = np.ones(imdb_tiny.missing_global_ids.shape[0],
                             dtype=np.int64)
        a = evaluate_architecture(imdb_tiny, assignment, "gcn", budget=3,
                                  hidden_dim=16, out_dim=16, seed=5)
        b = evaluate_architecture(imdb_tiny, assignment, "gcn", budget=3,
                                  hidden_dim=16, out_dim=16, seed=5)
        assert a.val_macro_f1 == b.val_macro_f1
        assert a.macro_f1 == b.macro_f1


class TestScheduler:
    def leaderboard_of(self, report):
        return [(r.trial_id, r.score, r.macro_f1, r.budget_used)
                for r in report.leaderboard()]

    def run_random(self, workers=0, seed=0, journal=None, resume=False,
                   trials=3):
        task = tiny_task()
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, seed=seed,
                                  num_trials=trials)
        return TrialScheduler(task, strategy, workers=workers,
                              journal=journal, resume=resume).run()

    def test_inline_run(self):
        report = self.run_random()
        assert len(report.results) == 3
        assert report.stats.executed == 3 and report.stats.failed == 0
        scores = [r.score for r in report.leaderboard()]
        assert scores == sorted(scores, reverse=True)

    def test_same_seed_identical_leaderboards(self):
        # the determinism contract: same base seed → identical leaderboard
        first = self.leaderboard_of(self.run_random(seed=3))
        second = self.leaderboard_of(self.run_random(seed=3))
        assert first == second
        different = self.leaderboard_of(self.run_random(seed=4))
        assert first != different

    @pytest.mark.slow
    def test_parallel_matches_inline(self):
        inline = self.leaderboard_of(self.run_random(workers=0, seed=1))
        parallel = self.leaderboard_of(self.run_random(workers=2, seed=1))
        assert inline == parallel

    def test_failed_trials_are_reported_not_raised(self, tmp_path):
        task = tiny_task(model_name="no_such_model")
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, num_trials=2)
        report = TrialScheduler(task, strategy, workers=0).run()
        assert report.stats.failed == 2
        assert all(r.failed and r.error for r in report.results)
        assert report.leaderboard() == []
        with pytest.raises(ValueError, match="no completed trials"):
            report.best


class TestJournalResume:
    def run_asha(self, journal, resume=False, seed=0, workers=0):
        task = tiny_task(max_budget=4)
        strategy = build_strategy("asha", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, seed=seed,
                                  num_trials=4, eta=2, min_budget=2)
        return TrialScheduler(task, strategy, workers=workers,
                              journal=journal, resume=resume).run()

    def test_resume_skips_completed_trials_exactly(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        full = self.run_asha(journal)
        total = len(full.results)
        reference = [(r.trial_id, r.score) for r in full.leaderboard()]

        lines = journal.read_text().splitlines()
        # header + 2 completed trials survive the "kill" (trial lines are
        # interleaved with their timeline records — cut after the second)
        trial_indices = [i for i, line in enumerate(lines)
                         if json.loads(line).get("kind") == "trial"]
        keep = trial_indices[1] + 1
        journal.write_text("\n".join(lines[:keep]) + "\n")

        resumed = self.run_asha(journal, resume=True)
        assert resumed.stats.replayed == 2
        assert resumed.stats.executed == total - 2
        assert [(r.trial_id, r.score)
                for r in resumed.leaderboard()] == reference

    def test_resume_tolerates_torn_tail(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        full = self.run_asha(journal)
        reference = [(r.trial_id, r.score) for r in full.leaderboard()]
        lines = journal.read_text().splitlines()
        journal.write_text("\n".join(lines[:2]) + "\n" + lines[2][:17])
        resumed = self.run_asha(journal, resume=True)
        assert resumed.stats.replayed == 1
        assert [(r.trial_id, r.score)
                for r in resumed.leaderboard()] == reference

    def test_fingerprint_mismatch_raises(self, tmp_path):
        journal = tmp_path / "tune.jsonl"
        self.run_asha(journal)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            self.run_asha(journal, resume=True, seed=1)

    def test_without_resume_journal_is_overwritten(self, tmp_path):
        def digest(text):
            # everything but wall-clock seconds is deterministic
            rows = [json.loads(line) for line in text.splitlines()]
            for row in rows:
                if row.get("kind") == "trial":
                    row["result"].pop("seconds", None)
            return rows

        journal = tmp_path / "tune.jsonl"
        self.run_asha(journal)
        first = digest(journal.read_text())
        report = self.run_asha(journal, resume=False)
        assert report.stats.replayed == 0
        assert digest(journal.read_text()) == first  # deterministic rewrite

    def test_read_missing_file(self, tmp_path):
        header, entries = TrialJournal.read(tmp_path / "absent.jsonl")
        assert header is None and entries == []

    def test_read_rejects_non_journal(self, tmp_path):
        path = tmp_path / "junk.jsonl"
        path.write_text(json.dumps({"kind": "other"}) + "\n")
        with pytest.raises(ValueError, match="not a trial journal"):
            TrialJournal.read(path)


class TestExport:
    def test_export_best_roundtrip(self, imdb_tiny, tmp_path):
        report = TestScheduler().run_random(trials=2)
        path = tmp_path / "best.npz"
        bundle = export_best(report, path=path, dataset=imdb_tiny)
        assert "macro_f1" in bundle.metrics
        assert bundle.meta["tuned_by"] == "random"
        assert bundle.meta["trial_id"] == report.best.trial_id
        loaded = ModelBundle.load(path)
        dataset, model, features = loaded.instantiate(imdb_tiny)
        expected = best_assignment(report, imdb_tiny)
        np.testing.assert_array_equal(loaded.assignment, expected)
        assert model is not None and features is not None

    def test_one_shot_winner_exports_at_search_config_dims(self, imdb_tiny,
                                                           tmp_path):
        # a darts/grid trial is scored at the *search config's* dims;
        # the exported bundle must rebuild that same model shape
        config = AutoACConfig(hidden_dim=24, out_dim=24, search_epochs=2,
                              patience=10, warmup_epochs=1, num_clusters=4,
                              retrain=TrainConfig(epochs=2, patience=5))
        task = tiny_task(max_budget=2, search_config=config)
        strategy = build_strategy("darts", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget)
        report = TrialScheduler(task, strategy, workers=0).run()
        bundle = export_best(report, path=tmp_path / "oneshot.npz",
                             dataset=imdb_tiny)
        assert bundle.hidden_dim == 24 and bundle.out_dim == 24

    def test_best_assignment_requires_ops_or_assignment(self, imdb_tiny):
        report = TestScheduler().run_random(trials=2)
        broken = TrialResult(trial_id=99, score=1.0)
        with pytest.raises(ValueError, match="neither"):
            best_assignment(report, imdb_tiny, broken)


def _exit_on_trial_one(task, trial, attempt=0):
    """Fork-inherited stand-in for execute_trial that dies on trial 1."""
    import os

    if trial.trial_id == 1:
        os._exit(13)  # simulates an OOM kill / segfault of the worker
    return execute_trial(task, trial, attempt)


class TestWorkerDeath:
    def test_dead_worker_fails_batch_but_not_run(self, monkeypatch,
                                                 tmp_path):
        # patch the scheduler's reference before the pool forks so the
        # children inherit the dying stand-in
        import repro.autotune.scheduler as scheduler_module

        monkeypatch.setattr(scheduler_module, "execute_trial",
                            _exit_on_trial_one)
        task = tiny_task()
        # evolution: batch 1 = trials 0-2 (trial 1 kills its worker and
        # breaks the pool), batch 2 = trials 3-4 on a *rebuilt* pool
        strategy = build_strategy("evolution", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, num_trials=5,
                                  population_size=3, sample_size=2,
                                  batch_size=2)
        journal = tmp_path / "death.jsonl"
        # retries off: this test pins down the *transient* death
        # accounting (the self-healing retry/quarantine path has its
        # own tests in test_faults.py)
        report = TrialScheduler(task, strategy, workers=2,
                                mp_context="fork", journal=journal,
                                max_trial_retries=0).run()
        assert len(report.results) == 5
        dead = {r.trial_id: r for r in report.results
                if r.status == "worker_died"}
        assert 1 in dead and "worker process died" in dead[1].error
        # the batch after the breakage ran on a rebuilt pool
        late = [r for r in report.results if r.trial_id in (3, 4)]
        assert all(not r.failed for r in late)
        # transient deaths stay out of the journal so resume retries them
        journaled = {entry["trial"]["trial_id"]
                     for entry in TrialJournal.read(journal)[1]}
        assert 1 not in journaled
        assert {3, 4} <= journaled
        # ... but the footer surfaces the death count for `repro runs`.
        # The broken pool can take sibling in-flight trials (0 and/or 2)
        # down with the poison one, so the count is 1-3 depending on
        # timing — it must simply match what the results report.
        assert report.stats.worker_deaths == len(dead) >= 1
        footer = TrialJournal.read_all(journal).footer
        assert footer["stats"]["worker_deaths"] == report.stats.worker_deaths
        assert footer["stopped"] is None


class TestWorker:
    def test_execute_trial_returns_plain_dict(self):
        task = tiny_task()
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, num_trials=1)
        trial = strategy.ask()[0]
        payload = execute_trial(task, trial)
        # journal/npz contract: the payload must be pure JSON
        json.dumps(payload)
        assert payload["status"] == "completed"
        assert payload["trial_id"] == trial.trial_id
        round_tripped = TrialResult.from_dict(
            json.loads(json.dumps(payload)))
        assert round_tripped.score == payload["score"]


#: per-strategy kwargs that make a cheap synthetic drive terminate
STRATEGY_MATRIX_KWARGS = {
    "random": dict(num_trials=32),
    "evolution": dict(num_trials=32, population_size=8, sample_size=3),
    "asha": dict(num_trials=16, eta=2, min_budget=2),
    "darts": {},
    "grid": dict(values=[{"num_clusters": 2}]),
}


class TestStrategyOpMatrix:
    """Every op in the search space is reachable by every strategy.

    Driven synthetically (ask/tell with fake scores, no training): a
    strategy that could never propose some registered completion op
    would silently shrink the paper's space ``O``.
    """

    def drive(self, strategy, max_batches=64):
        rng = np.random.default_rng(7)
        asked = []
        for _ in range(max_batches):
            batch = strategy.ask()
            if not batch:
                break
            for trial in sorted(batch, key=lambda t: t.trial_id):
                asked.append(trial)
                strategy.tell(trial, completed(trial, float(rng.random())))
        return asked

    def test_matrix_covers_every_registered_strategy(self):
        assert sorted(STRATEGY_MATRIX_KWARGS) == available_strategies()

    def test_default_space_is_the_registered_op_set(self):
        # the task-level space every trial draws from must resolve to
        # registered ops (extensions may add more; none may be missing)
        assert set(SearchSpace()) == set(DEFAULT_SPACE)
        assert set(DEFAULT_SPACE) <= set(available_ops())

    @pytest.mark.parametrize("name", sorted(STRATEGY_MATRIX_KWARGS))
    def test_every_op_reachable(self, name):
        num_ops = len(DEFAULT_SPACE)
        strategy = build_strategy(name, num_slots=6, num_ops=num_ops,
                                  max_budget=8, seed=0,
                                  **STRATEGY_MATRIX_KWARGS[name])
        asked = self.drive(strategy)
        assert asked and strategy.is_done()
        discrete = [t for t in asked if t.ops is not None]
        if discrete:
            seen = {op for t in discrete for op in t.ops}
            assert seen == set(range(num_ops)), \
                f"{name} never proposed ops {set(range(num_ops)) - seen}"
        else:
            # one-shot strategies (darts/grid) relax over the *entire*
            # space in a single trial: ops=None means "all of them"
            assert all(t.ops is None for t in asked)
