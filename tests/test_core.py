"""Tests for the AutoAC core: proximal ops, alpha, clustering, search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    AutoACConfig,
    AutoACSearcher,
    CompletionParameters,
    EMClusterAssigner,
    LinkPredictionAdapter,
    MixtureParameters,
    ModularityClusteringHead,
    NodeClassificationAdapter,
    kmeans,
    modularity_loss,
    prox_c,
    prox_c1,
    prox_c2,
    proximal_step,
    run_autoac,
)
from repro.datasets import get_dataset
from repro.graph import modularity_value
from repro.tensor import Tensor, gradcheck
from repro.training import LinkPredictionTask, TrainConfig, set_seed


class TestProximal:
    def test_prox_c1_one_hot(self):
        alpha = np.array([[0.2, 0.9, 0.1], [0.5, 0.1, 0.4]])
        out = prox_c1(alpha)
        np.testing.assert_array_equal(out, [[0, 1, 0], [1, 0, 0]])

    def test_prox_c1_requires_2d(self):
        with pytest.raises(ValueError):
            prox_c1(np.array([1.0, 2.0]))

    def test_prox_c2_box(self):
        alpha = np.array([[-0.5, 0.5, 1.5]])
        np.testing.assert_array_equal(prox_c2(alpha), [[0.0, 0.5, 1.0]])

    def test_prox_c_composition_is_feasible(self):
        rng = np.random.default_rng(0)
        alpha = rng.normal(size=(10, 4)) * 3
        out = prox_c(alpha)
        assert np.all((out == 0) | (out == 1))
        np.testing.assert_array_equal(np.count_nonzero(out, axis=1), 1)

    @given(hnp.arrays(np.float64, st.tuples(st.integers(1, 6),
                                            st.integers(2, 5)),
                      elements=st.floats(-2, 2, allow_nan=False)))
    @settings(max_examples=40, deadline=None)
    def test_prox_operators_idempotent(self, alpha):
        np.testing.assert_array_equal(prox_c1(prox_c1(alpha)), prox_c1(alpha))
        np.testing.assert_array_equal(prox_c2(prox_c2(alpha)), prox_c2(alpha))

    def test_proximal_step_stays_in_box(self):
        alpha = np.array([[0.9, 0.1]])
        grad = np.array([[-10.0, 10.0]])
        out = proximal_step(alpha, grad, lr=1.0)
        np.testing.assert_array_equal(out, [[1.0, 0.0]])

    def test_proximal_step_lr_validation(self):
        with pytest.raises(ValueError):
            proximal_step(np.zeros((1, 2)), np.zeros((1, 2)), lr=0.0)


class TestCompletionParameters:
    def test_initial_values_in_box(self):
        params = CompletionParameters(5, 4)
        assert np.all(params.values >= 0) and np.all(params.values <= 1)

    def test_discrete_is_one_hot(self):
        params = CompletionParameters(6, 4)
        discrete = params.discrete()
        np.testing.assert_array_equal(np.count_nonzero(discrete, axis=1), 1)

    def test_update_moves_argmax(self):
        params = CompletionParameters(1, 3)
        params.values = np.array([[0.6, 0.5, 0.5]])
        # strong gradient against op 0 at the discrete point
        grad = np.array([[5.0, 0.0, 0.0]])
        params.update(grad, lr=0.2)
        assert params.chosen_ops()[0] != 0

    def test_update_shape_validation(self):
        params = CompletionParameters(2, 3)
        with pytest.raises(ValueError):
            params.update(np.zeros((1, 3)), lr=0.1)

    def test_node_weights_gather(self):
        params = CompletionParameters(2, 3)
        bar = params.discrete_tensor()
        labels = np.array([0, 1, 1, 0])
        weights = params.node_weights(bar, labels)
        np.testing.assert_array_equal(weights.data[0], bar.data[0])
        np.testing.assert_array_equal(weights.data[1], bar.data[1])

    def test_mixture_weights_simplex(self):
        mixture = MixtureParameters(4, 5)
        weights = mixture.weights().data
        np.testing.assert_allclose(weights.sum(axis=1), 1.0)


class TestClustering:
    def test_head_outputs_simplex(self):
        head = ModularityClusteringHead(16, 4)
        h = Tensor(np.random.default_rng(0).normal(size=(10, 16)))
        assignment = head(h)
        np.testing.assert_allclose(assignment.data.sum(axis=1), 1.0)
        assert assignment.shape == (10, 4)

    def test_head_cluster_validation(self):
        with pytest.raises(ValueError):
            ModularityClusteringHead(8, 1)

    def test_modularity_loss_matches_numpy_reference(self, toy_graph):
        adj = toy_graph.adjacency()
        degrees = toy_graph.degrees()
        rng = np.random.default_rng(0)
        raw = rng.random((toy_graph.num_nodes, 3))
        assignment = raw / raw.sum(axis=1, keepdims=True)
        loss = modularity_loss(Tensor(assignment), adj, degrees)
        reference = -modularity_value(adj, assignment)
        collapse = np.sqrt(3) / toy_graph.num_nodes * np.linalg.norm(
            assignment.sum(axis=0))
        assert loss.item() == pytest.approx(reference + collapse, rel=1e-9)

    def test_modularity_loss_gradcheck(self, toy_graph):
        adj = toy_graph.adjacency()
        degrees = toy_graph.degrees()
        assignment = Tensor(
            np.random.default_rng(0).random((toy_graph.num_nodes, 2)) + 0.1,
            requires_grad=True)
        gradcheck(lambda c: modularity_loss(c, adj, degrees), [assignment])

    def test_collapse_term_penalizes_single_cluster(self, toy_graph):
        adj = toy_graph.adjacency()
        degrees = toy_graph.degrees()
        n = toy_graph.num_nodes
        collapsed = np.zeros((n, 2))
        collapsed[:, 0] = 1.0
        # the toy graph's true communities: {m0,m1,a0,a1,t0} | {m2,m3,a2,t1}
        sensible = np.zeros((n, 2))
        community_one = [0, 1, 4, 5, 7]
        sensible[community_one, 0] = 1.0
        sensible[[2, 3, 6, 8], 1] = 1.0
        loss_collapsed = modularity_loss(Tensor(collapsed), adj, degrees)
        loss_sensible = modularity_loss(Tensor(sensible), adj, degrees)
        # collapsed assignment: zero modularity plus maximal collapse penalty
        assert loss_collapsed.item() > loss_sensible.item()

    def test_kmeans_separable_blobs(self):
        rng = np.random.default_rng(0)
        blob1 = rng.normal(0, 0.1, size=(30, 2))
        blob2 = rng.normal(5, 0.1, size=(30, 2))
        points = np.vstack([blob1, blob2])
        labels, centers = kmeans(points, 2, rng)
        assert len(set(labels[:30])) == 1
        assert len(set(labels[30:])) == 1
        assert labels[0] != labels[-1]

    def test_kmeans_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((2, 2)), 5, np.random.default_rng(0))

    def test_em_assigner_warmup(self):
        rng = np.random.default_rng(0)
        assigner = EMClusterAssigner(20, 3, warmup=2, rng=rng)
        initial = assigner.labels.copy()
        points = np.random.default_rng(1).normal(size=(20, 4))
        np.testing.assert_array_equal(assigner.update(points), initial)
        np.testing.assert_array_equal(assigner.update(points), initial)
        third = assigner.update(points)  # warmup over: k-means runs
        assert third.shape == (20,)


class TestSearcher:
    def _config(self, **overrides):
        base = dict(search_epochs=8, patience=5, num_clusters=3,
                    warmup_epochs=2,
                    retrain=TrainConfig(epochs=15, patience=10))
        base.update(overrides)
        return AutoACConfig(**base)

    def test_search_result_shapes(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        searcher = AutoACSearcher(adapter, "gcn", self._config(), seed=0)
        result = searcher.search()
        n_missing = imdb_tiny.missing_global_ids.shape[0]
        assert result.assignment.shape == (n_missing,)
        assert result.cluster_labels.shape == (n_missing,)
        assert result.alpha.shape == (3, 4)
        assert result.op_names == ["mean", "gcn", "ppnp", "one_hot"]
        assert result.search_seconds > 0
        assert len(result.history["lgmoc"]) > 0

    def test_op_distribution_sums_to_one(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        result = AutoACSearcher(adapter, "gcn", self._config(), seed=0).search()
        assert sum(result.op_distribution().values()) == pytest.approx(1.0)

    @pytest.mark.parametrize("method", ["modularity", "em", "em_warmup", "none"])
    def test_all_cluster_methods_run(self, imdb_tiny, method):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        config = self._config(cluster_method=method, search_epochs=4)
        result = AutoACSearcher(adapter, "gcn", config, seed=0).search()
        n_missing = imdb_tiny.missing_global_ids.shape[0]
        assert result.assignment.shape == (n_missing,)
        if method == "none":
            assert result.alpha.shape[0] == n_missing

    def test_mixture_mode_first_order(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        config = self._config(discrete=False, unrolled=False, search_epochs=4)
        result = AutoACSearcher(adapter, "gcn", config, seed=0).search()
        assert result.assignment.shape[0] == imdb_tiny.missing_global_ids.shape[0]

    def test_mixture_mode_unrolled(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        config = self._config(discrete=False, unrolled=True, search_epochs=3)
        result = AutoACSearcher(adapter, "gcn", config, seed=0).search()
        assert np.all(np.isfinite(result.alpha))

    def test_discrete_faster_than_unrolled_mixture(self, imdb_tiny):
        """The Table VIII shape: discrete constraints cut search time."""
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        fast = AutoACSearcher(adapter, "gcn",
                              self._config(search_epochs=5, patience=5),
                              seed=0).search()
        set_seed(0)
        slow = AutoACSearcher(adapter, "gcn",
                              self._config(search_epochs=5, patience=5,
                                           discrete=False, unrolled=True),
                              seed=0).search()
        assert fast.search_seconds < slow.search_seconds

    def test_invalid_cluster_method(self):
        with pytest.raises(ValueError):
            AutoACConfig(cluster_method="agglomerative")

    def test_link_prediction_adapter(self, lastfm_tiny):
        set_seed(0)
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        adapter = LinkPredictionAdapter(task)
        config = self._config(search_epochs=4)
        result = AutoACSearcher(adapter, "gcn", config, seed=0).search()
        n_missing = task.train_graph_dataset.missing_global_ids.shape[0]
        assert result.assignment.shape == (n_missing,)


class TestPipeline:
    def test_run_autoac_end_to_end(self, imdb_tiny):
        set_seed(0)
        config = AutoACConfig(search_epochs=6, patience=4, num_clusters=3,
                              warmup_epochs=2,
                              retrain=TrainConfig(epochs=20, patience=10))
        result = run_autoac(imdb_tiny, "gcn", config, seed=0)
        chance = 1.0 / imdb_tiny.num_classes
        assert result.final.micro_f1 > chance
        assert result.total_seconds > 0

    def test_lgmoc_decreases(self, imdb_tiny):
        """Figure 4's shape: the clustering loss trends downward."""
        set_seed(0)
        config = AutoACConfig(search_epochs=25, patience=25, num_clusters=3,
                              warmup_epochs=2,
                              retrain=TrainConfig(epochs=5, patience=5))
        adapter = NodeClassificationAdapter(imdb_tiny)
        result = AutoACSearcher(adapter, "gcn", config, seed=0).search()
        lgmoc = result.history["lgmoc"]
        first = np.mean(lgmoc[:5])
        last = np.mean(lgmoc[-5:])
        assert last < first
