"""Tests for serialization, the CLI, dataset stats, and new tensor ops."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main
from repro.core import (
    FORMAT_VERSION,
    SearchResult,
    load_module,
    load_search_result,
    save_module,
    save_search_result,
)
from repro.datasets import dataset_statistics, get_dataset, render_table1
from repro.tensor import (
    Dropout,
    Linear,
    Module,
    Parameter,
    Sequential,
    Tensor,
    cos,
    gradcheck,
    sin,
)


class TestTrig:
    def test_values(self):
        x = Tensor(np.array([0.0, np.pi / 2]))
        np.testing.assert_allclose(cos(x).data, [1.0, 0.0], atol=1e-12)
        np.testing.assert_allclose(sin(x).data, [0.0, 1.0], atol=1e-12)

    def test_gradients(self):
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)),
                   requires_grad=True)
        gradcheck(lambda t: cos(t), [x])
        gradcheck(lambda t: sin(t), [x])

    def test_pythagorean_identity(self):
        x = Tensor(np.random.default_rng(1).normal(size=10))
        total = (cos(x) * cos(x) + sin(x) * sin(x)).data
        np.testing.assert_allclose(total, 1.0, rtol=1e-12)


def _dummy_result() -> SearchResult:
    return SearchResult(
        assignment=np.array([0, 1, 2, 3, 1]),
        cluster_labels=np.array([0, 1, 1, 0, 2]),
        alpha=np.random.default_rng(0).random((3, 4)),
        op_names=["mean", "gcn", "ppnp", "one_hot"],
        best_val_score=0.87,
        epochs_run=42,
        search_seconds=12.5,
        history={"lgmoc": [1.0, 0.9, 0.8], "val_score": [0.1, 0.5]},
    )


class TestSearchResultSerialization:
    def test_roundtrip(self, tmp_path):
        original = _dummy_result()
        path = tmp_path / "search.npz"
        save_search_result(original, path)
        loaded = load_search_result(path)
        np.testing.assert_array_equal(loaded.assignment, original.assignment)
        np.testing.assert_array_equal(loaded.cluster_labels,
                                      original.cluster_labels)
        np.testing.assert_allclose(loaded.alpha, original.alpha)
        assert loaded.op_names == original.op_names
        assert loaded.best_val_score == pytest.approx(0.87)
        assert loaded.epochs_run == 42
        assert loaded.history["lgmoc"] == [1.0, 0.9, 0.8]

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_search_result(tmp_path / "nope.npz")

    def test_op_distribution_survives(self, tmp_path):
        original = _dummy_result()
        path = tmp_path / "search.npz"
        save_search_result(original, path)
        loaded = load_search_result(path)
        assert loaded.op_distribution() == original.op_distribution()


class _NestedNet(Module):
    """A module tree with nesting, shared layer types and odd dtypes."""

    def __init__(self) -> None:
        super().__init__()
        self.trunk = Sequential(Linear(6, 8), Dropout(0.1), Linear(8, 4))
        self.head = Linear(4, 2, bias=False)
        self.scale = Parameter(np.float32([1.5, -0.5]), name="scale")


class TestModuleSerialization:
    def test_roundtrip(self, tmp_path):
        module = Linear(4, 3)
        path = tmp_path / "weights.npz"
        save_module(module, path)
        fresh = Linear(4, 3)
        load_module(fresh, path)
        np.testing.assert_array_equal(fresh.weight.data, module.weight.data)
        np.testing.assert_array_equal(fresh.bias.data, module.bias.data)

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_module(Linear(2, 2), tmp_path / "absent.npz")

    def test_nested_roundtrip_preserves_every_parameter(self, tmp_path):
        """dtype, shape and exact bits survive for the whole module tree."""
        module = _NestedNet()
        path = tmp_path / "nested.npz"
        save_module(module, path)
        fresh = _NestedNet()
        # make sure loading actually has to change something
        for param in fresh.parameters():
            param.data = param.data + 1.0
        load_module(fresh, path)
        saved = module.state_dict()
        reloaded = fresh.state_dict()
        assert set(saved) == set(reloaded)
        assert "trunk.0.weight" in saved and "scale" in saved
        for name in saved:
            assert reloaded[name].dtype == saved[name].dtype, name
            assert reloaded[name].shape == saved[name].shape, name
            np.testing.assert_array_equal(reloaded[name], saved[name],
                                          err_msg=name)

    def test_roundtrip_through_state_dict_is_exact(self):
        module = _NestedNet()
        clone = _NestedNet()
        clone.load_state_dict(module.state_dict())
        for (name, param), (_, fresh) in zip(module.named_parameters(),
                                             clone.named_parameters()):
            np.testing.assert_array_equal(param.data, fresh.data,
                                          err_msg=name)


class TestFormatVersioning:
    def test_search_archive_carries_version(self, tmp_path):
        path = tmp_path / "search.npz"
        save_search_result(_dummy_result(), path)
        with np.load(path) as archive:
            assert int(archive["format_version"][0]) == FORMAT_VERSION

    def test_module_archive_carries_version(self, tmp_path):
        path = tmp_path / "weights.npz"
        save_module(Linear(2, 2), path)
        with np.load(path) as archive:
            assert int(archive["format_version"][0]) == FORMAT_VERSION

    def test_pre_versioning_archive_still_loads(self, tmp_path):
        """Files written before format_version existed read as version 0."""
        module = Linear(3, 2)
        path = tmp_path / "old.npz"
        np.savez_compressed(path, **{
            key.replace(".", "__dot__"): value
            for key, value in module.state_dict().items()})
        fresh = Linear(3, 2)
        load_module(fresh, path)
        np.testing.assert_array_equal(fresh.weight.data, module.weight.data)

    def test_search_result_missing_arrays_is_value_error(self, tmp_path):
        path = tmp_path / "broken.npz"
        np.savez(path, assignment=np.arange(3))  # everything else absent
        with pytest.raises(ValueError, match="missing arrays"):
            load_search_result(path)

    def test_module_missing_arrays_is_value_error(self, tmp_path):
        module = Linear(4, 3)
        state = module.state_dict()
        state.pop("bias")
        path = tmp_path / "partial.npz"
        np.savez(path, **{key.replace(".", "__dot__"): value
                          for key, value in state.items()})
        with pytest.raises(ValueError, match="missing arrays"):
            load_module(Linear(4, 3), path)

    def test_future_version_rejected(self, tmp_path):
        path = tmp_path / "future.npz"
        save_search_result(_dummy_result(), path)
        with np.load(path) as archive:
            arrays = {key: archive[key] for key in archive.files}
        arrays["format_version"] = np.array([FORMAT_VERSION + 99])
        np.savez(path, **arrays)
        with pytest.raises(ValueError, match="newer than"):
            load_search_result(path)


class TestDatasetStats:
    def test_statistics_facts(self, imdb_tiny):
        stats = dataset_statistics(imdb_tiny)
        assert stats.name == "imdb"
        assert stats.num_node_types == 4
        assert stats.target == "movie"
        per_type = {t.name: t for t in stats.per_type}
        assert per_type["movie"].attribute == "Raw"
        assert per_type["actor"].attribute == "Missing"
        # forward edges only (reverse relations not double counted)
        forward = sum(imdb_tiny.graph.num_edges(rel)
                      for rel in imdb_tiny.graph.relations
                      if not rel[1].endswith("_rev"))
        assert stats.num_edges == forward

    def test_render_table1(self, imdb_tiny, acm_tiny):
        out = render_table1([dataset_statistics(imdb_tiny),
                             dataset_statistics(acm_tiny)])
        assert "Table I" in out
        assert "movie:" in out and "paper:" in out


class TestCLI:
    def test_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["datasets", "--scale", "tiny"])
        assert args.command == "datasets"
        args = parser.parse_args(["table", "9", "--scale", "tiny"])
        assert args.number == "9"
        with pytest.raises(SystemExit):
            parser.parse_args(["table", "1"])  # Table I lives under `datasets`

    def test_datasets_command_runs(self, capsys):
        assert main(["datasets", "--scale", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out
        assert "dblp" in out and "lastfm" in out

    def test_train_command_runs(self, capsys):
        code = main(["train", "--dataset", "imdb", "--scale", "tiny",
                     "--model", "mlp", "--epochs", "5",
                     "--completion", "mean"])
        assert code == 0
        assert "macro-F1" in capsys.readouterr().out

    def test_serving_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["export", "--dataset", "imdb",
                                  "--out", "b.npz"])
        assert args.command == "export" and args.out == "b.npz"
        args = parser.parse_args(["serve", "--bundle", "b.npz",
                                  "--port", "0"])
        assert args.command == "serve" and args.port == 0
        args = parser.parse_args(["predict", "--bundle", "b.npz",
                                  "--nodes", "1,2,3"])
        assert args.nodes == "1,2,3"
        with pytest.raises(SystemExit):
            parser.parse_args(["serve"])  # --bundle is required

    def test_predict_requires_source(self, capsys):
        assert main(["predict", "--nodes", "1"]) == 2

    def test_export_then_predict_cli(self, tmp_path, capsys):
        bundle_path = tmp_path / "bundle.npz"
        code = main(["export", "--dataset", "imdb", "--scale", "tiny",
                     "--model", "gcn", "--epochs", "4", "--clusters", "3",
                     "--out", str(bundle_path)])
        assert code == 0
        assert bundle_path.exists()
        assert main(["predict", "--bundle", str(bundle_path),
                     "--nodes", "0,1"]) == 0
        out = capsys.readouterr().out
        assert "bundle written" in out and "class" in out

    def test_strategies_command_lists_registry(self, capsys):
        assert main(["strategies"]) == 0
        out = capsys.readouterr().out
        for name in ("random", "evolution", "asha", "darts", "grid"):
            assert name in out

    def test_tune_parser_commands(self):
        parser = build_parser()
        args = parser.parse_args(["tune", "--strategy", "asha",
                                  "--trials", "4", "--budget", "8",
                                  "--workers", "2", "--resume",
                                  "--journal", "j.jsonl"])
        assert args.command == "tune" and args.strategy == "asha"
        assert args.workers == 2 and args.resume
        assert args.journal == "j.jsonl"

    def test_tune_command_runs_and_resumes(self, tmp_path, capsys):
        journal = tmp_path / "tune.jsonl"
        bundle = tmp_path / "tuned.npz"
        argv = ["tune", "--dataset", "imdb", "--scale", "tiny",
                "--model", "gcn", "--strategy", "random", "--trials", "2",
                "--budget", "3", "--hidden-dim", "16", "--slots", "4",
                "--journal", str(journal)]
        assert main(argv + ["--out", str(bundle)]) == 0
        out = capsys.readouterr().out
        assert "2 trials run" in out and "exported" in out
        assert journal.exists() and bundle.exists()
        assert main(argv + ["--resume"]) == 0
        assert "2 replayed from journal" in capsys.readouterr().out

    def test_tune_unknown_strategy_is_value_error(self):
        with pytest.raises(ValueError, match="unknown strategy"):
            main(["tune", "--dataset", "imdb", "--scale", "tiny",
                  "--strategy", "bogus"])

    def test_search_then_train_from_saved(self, tmp_path, capsys):
        out_file = tmp_path / "imdb_search.npz"
        code = main(["search", "--dataset", "imdb", "--scale", "tiny",
                     "--model", "gcn", "--epochs", "6", "--clusters", "3",
                     "--out", str(out_file)])
        assert code == 0
        assert out_file.exists()
        code = main(["train", "--dataset", "imdb", "--scale", "tiny",
                     "--model", "gcn", "--epochs", "5",
                     "--from-search", str(out_file)])
        assert code == 0
        output = capsys.readouterr().out
        assert "macro-F1" in output
