"""Tests for task adapters and message-passing internals."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.core.adapters import LinkPredictionAdapter, NodeClassificationAdapter
from repro.models import build_model
from repro.models.base import edge_arrays_with_self_loops
from repro.tensor import Tensor, no_grad
from repro.training import LinkPredictionTask, set_seed


class TestEdgeArrays:
    def test_self_loops_appended_with_own_type(self, imdb_tiny):
        src, dst, etype, num_types = edge_arrays_with_self_loops(imdb_tiny)
        n = imdb_tiny.graph.num_nodes
        base_edges = imdb_tiny.graph.num_edges()
        assert src.shape[0] == base_edges + n
        # the last n entries are the loops, with the dedicated type id
        np.testing.assert_array_equal(src[-n:], np.arange(n))
        np.testing.assert_array_equal(dst[-n:], np.arange(n))
        assert set(etype[-n:]) == {imdb_tiny.graph.num_relations}
        assert num_types == imdb_tiny.graph.num_relations + 1


class TestNodeClassificationAdapter:
    def test_train_and_val_losses_differ(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        model = build_model("mlp", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        model.eval(); features.eval()
        train_loss = adapter.train_loss(model, features).item()
        val_loss = adapter.val_loss(model, features).item()
        assert train_loss != pytest.approx(val_loss)

    def test_val_score_is_negative_loss(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        model = build_model("mlp", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        score = adapter.val_score(model, features)
        model.eval(); features.eval()
        with no_grad():
            loss = adapter.val_loss(model, features).item()
        assert score == pytest.approx(-loss, rel=1e-6)

    def test_auxiliary_loss_included_for_hgca(self, imdb_tiny):
        set_seed(0)
        adapter = NodeClassificationAdapter(imdb_tiny)
        model = build_model("hgca", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        model.eval(); features.eval()
        with_aux = adapter.train_loss(model, features).item()
        model.has_auxiliary_loss = False
        without_aux = adapter.train_loss(model, features).item()
        assert with_aux > without_aux  # InfoNCE term is positive


class TestLinkPredictionAdapter:
    def test_losses_and_score(self, lastfm_tiny):
        set_seed(0)
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        adapter = LinkPredictionAdapter(task)
        model = build_model("gcn", adapter.dataset)
        features = HandcraftedFeatures(adapter.dataset, 64)
        loss = adapter.train_loss(model, features)
        assert np.isfinite(loss.item())
        score = adapter.val_score(model, features)
        assert 0.0 <= score <= 1.0

    def test_train_loss_resamples_negatives(self, lastfm_tiny):
        """Two calls draw fresh negative edges → different losses."""
        set_seed(0)
        task = LinkPredictionTask(lastfm_tiny, mask_rate=0.1, seed=0)
        adapter = LinkPredictionAdapter(task)
        model = build_model("gcn", adapter.dataset)
        features = HandcraftedFeatures(adapter.dataset, 64)
        model.eval(); features.eval()
        first = adapter.train_loss(model, features).item()
        second = adapter.train_loss(model, features).item()
        assert first != pytest.approx(second)


class TestMAGNNInternals:
    def test_isolated_targets_keep_self_content(self, imdb_tiny):
        """Self instances guarantee every target row is populated."""
        set_seed(0)
        model = build_model("magnn", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        model.eval(); features.eval()
        with no_grad():
            encoded = model.encode(features())
        norms = np.linalg.norm(encoded.data, axis=1)
        assert np.all(norms > 0), "no target node should be left embedding-free"

    def test_instance_arrays_reference_targets(self, imdb_tiny):
        model = build_model("magnn", imdb_tiny)
        layer = model.path_layers[0]
        n_target = imdb_tiny.graph.num_nodes_of("movie")
        assert layer.dst_local.min() >= 0
        assert layer.dst_local.max() < n_target
        # every target appears as a destination at least once (self instance)
        assert np.unique(layer.dst_local).shape[0] == n_target


class TestHANInternals:
    def test_metapath_edge_lists_have_loops(self, imdb_tiny):
        model = build_model("han", imdb_tiny)
        n_target = imdb_tiny.graph.num_nodes_of("movie")
        for src, dst in model.edge_lists:
            # the last n_target entries are the appended self loops
            np.testing.assert_array_equal(src[-n_target:],
                                          np.arange(n_target))
            np.testing.assert_array_equal(dst[-n_target:],
                                          np.arange(n_target))
