"""Cross-module integration tests: full pipelines on tiny datasets."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import FixedAssignmentFeatures, HandcraftedFeatures
from repro.core import (
    AutoACConfig,
    run_autoac,
    run_autoac_link_prediction,
)
from repro.datasets import get_dataset
from repro.models import build_model
from repro.training import (
    LinkPredConfig,
    LinkPredictionTask,
    NodeClassificationTrainer,
    TrainConfig,
    set_seed,
)


def _fast_config(**overrides):
    base = dict(search_epochs=10, patience=8, num_clusters=4, warmup_epochs=2,
                retrain=TrainConfig(epochs=25, patience=10))
    base.update(overrides)
    return AutoACConfig(**base)


class TestFullPipelines:
    def test_autoac_with_magnn_backbone(self, imdb_tiny):
        """The paper's second backbone: metapath model + searched completion."""
        set_seed(0)
        result = run_autoac(imdb_tiny, "magnn", _fast_config(), seed=0)
        chance = 1.0 / imdb_tiny.num_classes
        assert result.final.micro_f1 > chance
        assert result.search.assignment.shape[0] == \
            imdb_tiny.missing_global_ids.shape[0]

    def test_autoac_on_dblp_target_type_missing(self, dblp_tiny):
        """DBLP: the classification targets themselves lack attributes."""
        set_seed(0)
        assert dblp_tiny.target_type in dblp_tiny.missing_types
        result = run_autoac(dblp_tiny, "gcn", _fast_config(), seed=0)
        chance = 1.0 / dblp_tiny.num_classes
        assert result.final.micro_f1 > chance

    def test_link_prediction_pipeline_dblp(self, dblp_tiny):
        set_seed(0)
        task = LinkPredictionTask(dblp_tiny, mask_rate=0.1, seed=0)
        result = run_autoac_link_prediction(
            task, "gcn", _fast_config(),
            retrain_config=LinkPredConfig(epochs=25, patience=8), seed=0)
        assert 0.0 <= result.final.roc_auc <= 1.0
        assert result.total_seconds > 0

    def test_assignment_reuse_across_models(self, imdb_tiny):
        """A searched assignment transfers to a different backbone."""
        set_seed(0)
        result = run_autoac(imdb_tiny, "gcn", _fast_config(), seed=0)
        set_seed(0)
        features = FixedAssignmentFeatures(imdb_tiny, 64,
                                           result.search.assignment)
        model = build_model("gat", imdb_tiny)
        transferred = NodeClassificationTrainer(
            model, features, imdb_tiny,
            TrainConfig(epochs=25, patience=10)).train()
        chance = 1.0 / imdb_tiny.num_classes
        assert transferred.micro_f1 > chance

    def test_handcrafted_onehot_dataset_trains(self, imdb_tiny):
        """Table IX machinery: partially handcrafted datasets stay trainable."""
        set_seed(0)
        partial = imdb_tiny.with_handcrafted_onehot(["keyword"])
        assert "keyword" in partial.attributed_types
        result = run_autoac(partial, "gcn", _fast_config(), seed=0)
        assert result.search.assignment.shape[0] == \
            partial.missing_global_ids.shape[0]
        assert partial.missing_global_ids.shape[0] < \
            imdb_tiny.missing_global_ids.shape[0]


class TestDeterminism:
    def test_same_seed_same_search(self, imdb_tiny):
        set_seed(0)
        first = run_autoac(imdb_tiny, "gcn", _fast_config(), seed=0)
        set_seed(0)
        second = run_autoac(imdb_tiny, "gcn", _fast_config(), seed=0)
        np.testing.assert_array_equal(first.search.assignment,
                                      second.search.assignment)
        assert first.final.macro_f1 == pytest.approx(second.final.macro_f1)

    def test_different_seed_can_differ(self, imdb_tiny):
        set_seed(0)
        first = run_autoac(imdb_tiny, "gcn", _fast_config(), seed=0)
        set_seed(7)
        second = run_autoac(imdb_tiny, "gcn", _fast_config(), seed=7)
        # not asserting inequality of F1 (could tie); alpha trajectories differ
        assert not np.array_equal(first.search.alpha, second.search.alpha)


class TestScaleConsistency:
    @pytest.mark.parametrize("name", ["dblp", "acm", "imdb", "lastfm"])
    def test_every_dataset_supports_handcrafted_training(self, name):
        set_seed(0)
        dataset = get_dataset(name, scale="tiny", seed=0)
        features = HandcraftedFeatures(dataset, 32)
        model = build_model("gcn", dataset, hidden_dim=32, out_dim=32)
        result = NodeClassificationTrainer(
            model, features, dataset, TrainConfig(epochs=15, patience=15)
        ).train()
        assert 0.0 <= result.macro_f1 <= 1.0
