"""Tests for HGNN-AC and metapath2vec."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import (
    HGNNACFeatures,
    Metapath2VecConfig,
    prelearn_topology,
    train_metapath2vec,
)
from repro.baselines.metapath2vec import _walk_pairs
from repro.tensor import no_grad


class TestWalkPairs:
    def test_window_pairs(self):
        walks = [np.array([1, 2, 3])]
        pairs = _walk_pairs(walks, window=1)
        keys = set(zip(pairs[0].tolist(), pairs[1].tolist()))
        assert keys == {(1, 2), (2, 3), (2, 1), (3, 2)}

    def test_empty_walks(self):
        assert _walk_pairs([], window=2).shape == (2, 0)

    def test_window_wider_than_walk(self):
        walks = [np.array([1, 2])]
        pairs = _walk_pairs(walks, window=5)
        assert pairs.shape[1] == 2  # only offset 1 applies


class TestMetapath2Vec:
    def test_embedding_shape(self, imdb_tiny):
        config = Metapath2VecConfig(embed_dim=8, walks_per_node=1,
                                    walk_length=6, epochs=1)
        emb = train_metapath2vec(imdb_tiny.graph, imdb_tiny.metapaths,
                                 config, seed=0)
        assert emb.shape == (imdb_tiny.graph.num_nodes, 8)
        assert np.all(np.isfinite(emb))

    def test_cowalkers_closer_than_strangers(self, imdb_tiny):
        """Topological embeddings must encode co-occurrence structure."""
        config = Metapath2VecConfig(embed_dim=16, walks_per_node=6,
                                    walk_length=12, epochs=3)
        emb = train_metapath2vec(imdb_tiny.graph, imdb_tiny.metapaths,
                                 config, seed=0)
        adj = imdb_tiny.graph.adjacency()
        rng = np.random.default_rng(0)
        normed = emb / (np.linalg.norm(emb, axis=1, keepdims=True) + 1e-12)
        coo = adj.tocoo()
        edge_sims = (normed[coo.row] * normed[coo.col]).sum(axis=1)
        rand_a = rng.integers(0, adj.shape[0], 2000)
        rand_b = rng.integers(0, adj.shape[0], 2000)
        rand_sims = (normed[rand_a] * normed[rand_b]).sum(axis=1)
        assert edge_sims.mean() > rand_sims.mean()

    def test_non_cyclic_metapaths_skipped(self, imdb_tiny):
        config = Metapath2VecConfig(embed_dim=4, walks_per_node=1,
                                    walk_length=4, epochs=1)
        emb = train_metapath2vec(imdb_tiny.graph,
                                 [("movie", "actor")], config, seed=0)
        # no walks → embeddings stay at initialization but valid
        assert emb.shape == (imdb_tiny.graph.num_nodes, 4)


class TestHGNNAC:
    def test_prelearn_records_time(self, imdb_tiny):
        config = Metapath2VecConfig(embed_dim=8, walks_per_node=1,
                                    walk_length=4, epochs=1)
        pre = prelearn_topology(imdb_tiny, config, seed=0)
        assert pre.seconds > 0
        assert pre.embeddings.shape[0] == imdb_tiny.graph.num_nodes

    def test_completed_shape_and_grads(self, imdb_tiny):
        rng = np.random.default_rng(0)
        topo = rng.normal(size=(imdb_tiny.graph.num_nodes, 8))
        builder = HGNNACFeatures(imdb_tiny, 32, topo)
        h0 = builder()
        assert h0.shape == (imdb_tiny.graph.num_nodes, 32)
        (h0 * h0).mean().backward()
        grads = [name for name, p in builder.named_parameters()
                 if p.grad is not None]
        assert "attn_proj" in grads and "fallback" in grads

    def test_embedding_count_validation(self, imdb_tiny):
        with pytest.raises(ValueError):
            HGNNACFeatures(imdb_tiny, 32, np.zeros((3, 8)))

    def test_completion_is_convex_combination_of_neighbors(self, imdb_tiny):
        """Completed raw attrs lie in the convex hull of neighbor attrs."""
        rng = np.random.default_rng(0)
        topo = rng.normal(size=(imdb_tiny.graph.num_nodes, 8))
        builder = HGNNACFeatures(imdb_tiny, 32, topo)
        raw = imdb_tiny.feature_matrix_zero_filled()
        with no_grad():
            # reconstruct the pre-projection aggregation manually
            from repro.tensor import Tensor, segment_softmax, scatter_add, leaky_relu
            topo_dst = Tensor(topo[builder.edge_dst]) @ builder.attn_proj
            topo_src = Tensor(topo[builder.edge_src]) @ builder.attn_proj
            logits = leaky_relu((topo_dst * topo_src).sum(axis=-1), 0.2)
            n_missing = imdb_tiny.missing_global_ids.shape[0]
            alpha = segment_softmax(logits, builder.edge_dst_pos, n_missing)
        # weights within each destination sum to 1 → convex combination
        sums = np.zeros(n_missing)
        np.add.at(sums, builder.edge_dst_pos, alpha.data)
        covered = np.unique(builder.edge_dst_pos)
        np.testing.assert_allclose(sums[covered], 1.0, rtol=1e-8)
