"""Tests for the optional/extension features: RotatE encoder, collapse-reg
ablation, linear instance encoder, failure injection on trainers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.core import AutoACConfig, ModularityClusteringHead, modularity_loss
from repro.core.adapters import NodeClassificationAdapter
from repro.core.search import AutoACSearcher
from repro.models import build_model
from repro.tensor import Adam, Tensor, cross_entropy, no_grad
from repro.training import TrainConfig, set_seed


@pytest.mark.parametrize("encoder", ["mean", "linear", "rotate"])
class TestMAGNNEncoders:
    def test_forward_and_gradients(self, imdb_tiny, encoder):
        set_seed(0)
        features = HandcraftedFeatures(imdb_tiny, 64)
        model = build_model("magnn", imdb_tiny, encoder=encoder)
        logits = model(features())
        assert logits.shape == (imdb_tiny.graph.num_nodes_of("movie"),
                                imdb_tiny.num_classes)
        cross_entropy(logits, imdb_tiny.labels).backward()
        missing = [name for name, p in model.named_parameters()
                   if p.grad is None]
        assert not missing, f"params without gradient under {encoder}: {missing}"


class TestRotateEncoderDetails:
    def test_rejects_odd_dim(self, imdb_tiny):
        with pytest.raises(ValueError):
            build_model("magnn", imdb_tiny, hidden_dim=64, out_dim=63,
                        encoder="rotate", num_heads=3)

    def test_zero_phase_reduces_to_cumulative_mean(self, imdb_tiny):
        """With phase 0 the rotation is identity: o2 = src + center + dst."""
        set_seed(0)
        model = build_model("magnn", imdb_tiny, encoder="rotate")
        layer = model.path_layers[0]
        layer.phase.data[:] = 0.0
        rng = np.random.default_rng(0)
        h = [Tensor(rng.normal(size=(5, 64))) for _ in range(3)]
        with no_grad():
            encoded = layer._rotate_encode(*h).data
        manual = (h[0].data
                  + (h[1].data + h[0].data)
                  + (h[2].data + h[1].data + h[0].data)) / 3.0
        np.testing.assert_allclose(encoded, manual, atol=1e-12)

    def test_rotation_preserves_complex_modulus(self, imdb_tiny):
        """|r ∘ z| = |z| for the unit rotation (RotatE's defining property)."""
        set_seed(0)
        model = build_model("magnn", imdb_tiny, encoder="rotate")
        layer = model.path_layers[0]
        rng = np.random.default_rng(1)
        layer.phase.data[:] = rng.uniform(-np.pi, np.pi,
                                          size=layer.phase.shape)
        z = Tensor(rng.normal(size=(4, 64)))
        zero = Tensor(np.zeros((4, 64)))
        with no_grad():
            # o1 = 0 + rotate(z) → modulus of o1 equals modulus of z
            rotated = layer._rotate_encode(z, zero, zero).data
        half = 32
        # un-mix the mean: o0 = z/3 contributes, so isolate via o1 = 3*enc - ...
        # simpler: check rotate() directly through a pure rotation call
        from repro.tensor import cos as t_cos, sin as t_sin
        with no_grad():
            re = z.data[:, :half]
            im = z.data[:, half:]
            pr = np.cos(layer.phase.data)
            pi = np.sin(layer.phase.data)
            rot_re = re * pr - im * pi
            rot_im = re * pi + im * pr
        np.testing.assert_allclose(rot_re ** 2 + rot_im ** 2,
                                   re ** 2 + im ** 2, rtol=1e-10)


class TestCollapseRegularizationAblation:
    def _train_head(self, graph, collapse_weight: float) -> np.ndarray:
        """Train a clustering head by L_GmoC alone; return cluster masses."""
        set_seed(0)
        adj = graph.adjacency()
        degrees = graph.degrees()
        rng = np.random.default_rng(0)
        features = Tensor(rng.normal(size=(graph.num_nodes, 16)))
        head = ModularityClusteringHead(16, 3)
        optimizer = Adam(head.parameters(), lr=0.05)
        for _ in range(150):
            optimizer.zero_grad()
            loss = modularity_loss(head(features), adj, degrees,
                                   collapse_weight=collapse_weight)
            loss.backward()
            optimizer.step()
        with no_grad():
            assignment = head(features).data
        return assignment.sum(axis=0)

    def test_collapse_weight_balances_clusters(self, toy_graph):
        masses_with = self._train_head(toy_graph, collapse_weight=1.0)
        masses_without = self._train_head(toy_graph, collapse_weight=0.0)
        # normalized imbalance: max cluster mass share
        share_with = masses_with.max() / masses_with.sum()
        share_without = masses_without.max() / masses_without.sum()
        assert share_with <= share_without + 1e-6, (
            f"collapse reg should not increase imbalance: "
            f"{share_with:.3f} vs {share_without:.3f}")

    def test_config_flag_plumbs_through(self, imdb_tiny):
        set_seed(0)
        config = AutoACConfig(search_epochs=3, patience=3, num_clusters=3,
                              warmup_epochs=1, collapse_weight=0.0,
                              retrain=TrainConfig(epochs=3, patience=3))
        searcher = AutoACSearcher(NodeClassificationAdapter(imdb_tiny),
                                  "gcn", config, seed=0)
        result = searcher.search()
        assert len(result.history["lgmoc"]) > 0


class TestFailureInjection:
    def test_trainer_survives_huge_learning_rate(self, imdb_tiny):
        """Divergent training must not crash (NaN-safe metrics path)."""
        from repro.training import NodeClassificationTrainer

        set_seed(0)
        model = build_model("mlp", imdb_tiny)
        features = HandcraftedFeatures(imdb_tiny, 64)
        trainer = NodeClassificationTrainer(
            model, features, imdb_tiny,
            TrainConfig(epochs=10, patience=10, lr=50.0))
        result = trainer.train()
        assert 0.0 <= result.macro_f1 <= 1.0

    def test_searcher_requires_missing_nodes(self, imdb_tiny):
        complete = imdb_tiny.with_handcrafted_onehot(imdb_tiny.missing_types)
        with pytest.raises(ValueError):
            AutoACSearcher(NodeClassificationAdapter(complete), "gcn",
                           AutoACConfig(search_epochs=2, num_clusters=2),
                           seed=0)

    def test_weighted_features_reject_stale_weight_shape(self, imdb_tiny):
        from repro.completion import WeightedCompletionFeatures

        builder = WeightedCompletionFeatures(imdb_tiny, 16)
        bad = Tensor(np.ones((3, 2)))
        with pytest.raises(ValueError):
            builder.set_weights(bad)
