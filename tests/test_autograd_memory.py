"""Regression tests: backward() frees the autograd graph.

Epoch-sized graphs used to stay fully alive after ``backward()`` —
every intermediate kept its ``.grad``, ``_parents`` chain and backward
closure until the loss tensor itself was dropped.  These tests pin the
fixed behaviour: non-leaf nodes release everything right after the
backward pass (leaves keep their grads), freed graphs raise on a second
backward, and a full train step leaves no graph debris behind.
"""

from __future__ import annotations

import gc
import weakref

import numpy as np
import pytest

from repro.tensor import Adam, Linear, Tensor, cross_entropy


def _leaf(shape, seed=0):
    return Tensor(np.random.default_rng(seed).normal(size=shape),
                  requires_grad=True)


class TestGraphRelease:
    def test_non_leaf_grads_released_leaves_kept(self):
        x = _leaf((4,))
        y = x * 2.0
        loss = (y * y).sum()
        loss.backward()
        assert x.grad is not None
        assert y.grad is None and loss.grad is None
        assert y._parents == () and loss._parents == ()

    def test_intermediates_collectible_while_loss_alive(self):
        x = _leaf((8, 4))
        hidden = x * 3.0
        loss = (hidden * hidden).sum()
        refs = [weakref.ref(node) for node in loss._topological_order()
                if node is not loss and node._backward_fn is not None]
        assert refs, "expected non-leaf intermediates in the graph"
        loss.backward()
        del hidden
        gc.collect()
        # loss is still alive, but its parents were dropped
        assert all(ref() is None for ref in refs)

    def test_second_backward_through_freed_graph_raises(self):
        x = _leaf((3,))
        loss = (x * 2.0).sum()
        loss.backward()
        with pytest.raises(RuntimeError, match="freed"):
            loss.backward()

    def test_freed_intermediate_reused_in_new_graph_raises(self):
        x = _leaf((3,))
        y = x * 2.0
        y.sum().backward()
        with pytest.raises(RuntimeError, match="freed"):
            (y * 3.0).sum().backward()

    def test_retain_graph_allows_second_backward(self):
        x = _leaf((2,))
        loss = (x * 2.0).sum()
        loss.backward(retain_graph=True)
        loss.backward()
        np.testing.assert_allclose(x.grad, [4.0, 4.0])

    def test_fresh_graphs_still_accumulate_into_leaves(self):
        x = _leaf((2,))
        (x * 1.0).sum().backward()
        (x * 1.0).sum().backward()
        np.testing.assert_allclose(x.grad, [2.0, 2.0])


class TestTrainStepMemory:
    @staticmethod
    def _live_tensor_count() -> int:
        gc.collect()
        return sum(1 for obj in gc.get_objects() if isinstance(obj, Tensor))

    def test_graph_node_count_returns_to_baseline_after_train_step(self):
        rng = np.random.default_rng(0)
        model = Linear(16, 4)
        optimizer = Adam(model.parameters(), lr=1e-3)
        inputs = rng.normal(size=(32, 16))
        targets = rng.integers(0, 4, size=32)

        def step():
            optimizer.zero_grad()
            loss = cross_entropy(model(Tensor(inputs)), targets)
            loss.backward()
            optimizer.step()

        step()  # warm up lazy allocations (optimizer state etc.)
        baseline = self._live_tensor_count()
        for _ in range(5):
            step()
        after = self._live_tensor_count()
        # every step's graph must be fully collectible; allow nothing to
        # accumulate across five steps
        assert after <= baseline, (
            f"train steps leak graph nodes: {baseline} -> {after}")
