"""Tests for experiment runner helpers and additional engine edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import (
    mean_std,
    single_op_features_factory,
    train_baseline,
)
from repro.experiments.configs import preset
from repro.tensor import Tensor, gradcheck


class TestMeanStd:
    def test_values(self):
        stats = mean_std([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["std"] == pytest.approx(np.std([1, 2, 3]))

    def test_single_value(self):
        stats = mean_std([0.5])
        assert stats["mean"] == 0.5 and stats["std"] == 0.0


class TestSingleOpFactory:
    def test_named_op(self, imdb_tiny):
        factory = single_op_features_factory(imdb_tiny, 32, "mean")
        builder = factory()
        assert builder().shape == (imdb_tiny.graph.num_nodes, 32)

    def test_random_op_is_reproducible(self, imdb_tiny):
        factory = single_op_features_factory(imdb_tiny, 32, "random")
        first = factory().assignment
        second = single_op_features_factory(imdb_tiny, 32, "random")().assignment
        np.testing.assert_array_equal(first, second)


class TestTrainBaselineHelper:
    def test_row_fields(self, imdb_tiny):
        p = preset("tiny")
        row = train_baseline(imdb_tiny, "mlp", p, seed=0)
        assert set(row) == {"macro_f1", "micro_f1", "runtime_total",
                            "runtime_per_epoch"}
        assert row["runtime_per_epoch"] <= row["runtime_total"]


class TestEngineEdgeCases:
    def test_getitem_boolean_mask(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        mask = np.array([True, False, True])
        gradcheck(lambda t: t[mask], [x])

    def test_getitem_2d_fancy(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)),
                   requires_grad=True)
        rows = np.array([0, 2, 2])
        cols = np.array([1, 3, 3])
        gradcheck(lambda t: t[rows, cols], [x])

    def test_empty_gather(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = x[np.array([], dtype=np.int64)]
        assert out.shape == (0, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)

    def test_scalar_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0 + 1.0) ** 2
        y.backward()
        assert x.grad == pytest.approx(2 * 7 * 3)

    def test_zero_size_scatter(self):
        from repro.tensor import scatter_add
        src = Tensor(np.zeros((0, 4)), requires_grad=True)
        out = scatter_add(src, np.array([], dtype=np.int64), 3)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data, 0.0)
