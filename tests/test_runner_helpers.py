"""Tests for experiment runner helpers and additional engine edge cases."""

from __future__ import annotations

import numpy as np
import pytest

from repro.experiments.runner import (
    mean_std,
    single_op_features_factory,
    train_autoac,
    train_autoac_repeated,
    train_baseline,
    tune_sweep,
)
from repro.experiments.configs import ExperimentPreset, preset
from repro.tensor import Tensor, gradcheck
from repro.training import LinkPredConfig, TrainConfig


class TestMeanStd:
    def test_values(self):
        stats = mean_std([1.0, 2.0, 3.0])
        assert stats["mean"] == pytest.approx(2.0)
        assert stats["std"] == pytest.approx(np.std([1, 2, 3]))

    def test_single_value(self):
        stats = mean_std([0.5])
        assert stats["mean"] == 0.5 and stats["std"] == 0.0


class TestSingleOpFactory:
    def test_named_op(self, imdb_tiny):
        factory = single_op_features_factory(imdb_tiny, 32, "mean")
        builder = factory()
        assert builder().shape == (imdb_tiny.graph.num_nodes, 32)

    def test_random_op_is_reproducible(self, imdb_tiny):
        factory = single_op_features_factory(imdb_tiny, 32, "random")
        first = factory().assignment
        second = single_op_features_factory(imdb_tiny, 32, "random")().assignment
        np.testing.assert_array_equal(first, second)


class TestTrainBaselineHelper:
    def test_row_fields(self, imdb_tiny):
        p = preset("tiny")
        row = train_baseline(imdb_tiny, "mlp", p, seed=0)
        assert set(row) == {"macro_f1", "micro_f1", "runtime_total",
                            "runtime_per_epoch"}
        assert row["runtime_per_epoch"] <= row["runtime_total"]


def micro_preset(repeats: int = 2) -> ExperimentPreset:
    """A preset small enough for helper tests to run real pipelines."""
    return ExperimentPreset(
        scale="tiny",
        train=TrainConfig(epochs=3, patience=5),
        link=LinkPredConfig(epochs=3, patience=5),
        search_epochs=2,
        search_patience=5,
        repeats=repeats,
        hidden_dim=16,
    )


class TestTrainAutoacRepeated:
    def test_aggregation_over_seeds(self, imdb_tiny, monkeypatch):
        calls = []

        def fake_train_autoac(dataset, dataset_name, model_name, p,
                              seed=0, **overrides):
            calls.append(seed)
            return {
                "macro_f1": 0.5 + 0.1 * seed, "micro_f1": 0.6 + 0.1 * seed,
                "search_seconds": 1.0, "retrain_seconds": 2.0,
                "runtime_total": 3.0, "runtime_per_epoch": 0.5,
                "op_distribution": {"mean": 1.0}, "assignment": [0],
                "history": {"val_score": [0.1]}, "cluster_labels": [0],
            }

        import repro.experiments.runner as runner_module
        monkeypatch.setattr(runner_module, "train_autoac", fake_train_autoac)
        row = train_autoac_repeated(imdb_tiny, "imdb", "gcn",
                                    micro_preset(repeats=3), base_seed=10)
        assert calls == [10, 11, 12]
        assert row["macro_f1"] == pytest.approx(0.5 + 0.1 * 11)
        assert row["macro_f1_std"] == pytest.approx(np.std([0.5 + 0.1 * s
                                                            for s in calls]))
        # non-aggregated fields come from the first run
        assert row["op_distribution"] == {"mean": 1.0}
        assert row["runtime_total"] == pytest.approx(3.0)

    def test_single_repeat_has_zero_std(self, imdb_tiny):
        p = micro_preset(repeats=1)
        row = train_autoac_repeated(imdb_tiny, "imdb", "gcn", p, base_seed=0,
                                    num_clusters=2, warmup_epochs=1)
        assert row["macro_f1_std"] == 0.0
        assert row["micro_f1_std"] == 0.0
        assert 0.0 <= row["macro_f1"] <= 1.0


class TestTuneSweep:
    def test_rows_match_sequential_train_autoac(self, imdb_tiny):
        # the scheduler-backed sweep must reproduce the historical
        # sequential loop bit for bit (grid trials reuse the base seed)
        p = micro_preset(repeats=1)
        rows = tune_sweep("imdb", "gcn", p,
                          [{"num_clusters": 2}, {"num_clusters": 3}], seed=0)
        assert len(rows) == 2
        expected = train_autoac(imdb_tiny, "imdb", "gcn", p, seed=0,
                                num_clusters=2)
        assert rows[0]["macro_f1"] == expected["macro_f1"]
        assert rows[0]["micro_f1"] == expected["micro_f1"]

    def test_journal_resume_skips_completed_points(self, imdb_tiny,
                                                   tmp_path):
        p = micro_preset(repeats=1)
        journal = tmp_path / "sweep.jsonl"
        overrides = [{"num_clusters": 2}, {"num_clusters": 3}]
        first = tune_sweep("imdb", "gcn", p, overrides, seed=0,
                           journal=journal)
        again = tune_sweep("imdb", "gcn", p, overrides, seed=0,
                           journal=journal)
        assert [r["macro_f1"] for r in first] == [r["macro_f1"]
                                                  for r in again]


class TestEngineEdgeCases:
    def test_getitem_boolean_mask(self):
        x = Tensor(np.arange(6, dtype=float).reshape(3, 2), requires_grad=True)
        mask = np.array([True, False, True])
        gradcheck(lambda t: t[mask], [x])

    def test_getitem_2d_fancy(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 5)),
                   requires_grad=True)
        rows = np.array([0, 2, 2])
        cols = np.array([1, 3, 3])
        gradcheck(lambda t: t[rows, cols], [x])

    def test_empty_gather(self):
        x = Tensor(np.ones((3, 2)), requires_grad=True)
        out = x[np.array([], dtype=np.int64)]
        assert out.shape == (0, 2)
        out.sum().backward()
        np.testing.assert_allclose(x.grad, 0.0)

    def test_scalar_chain(self):
        x = Tensor(2.0, requires_grad=True)
        y = (x * 3.0 + 1.0) ** 2
        y.backward()
        assert x.grad == pytest.approx(2 * 7 * 3)

    def test_zero_size_scatter(self):
        from repro.tensor import scatter_add
        src = Tensor(np.zeros((0, 4)), requires_grad=True)
        out = scatter_add(src, np.array([], dtype=np.int64), 3)
        assert out.shape == (3, 4)
        np.testing.assert_allclose(out.data, 0.0)
