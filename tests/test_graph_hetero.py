"""Tests for the heterogeneous graph container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import HeteroGraph


class TestConstruction:
    def test_global_id_layout(self, toy_graph):
        assert toy_graph.num_nodes == 9
        assert toy_graph.offset_of("movie") == 0
        assert toy_graph.offset_of("actor") == 4
        assert toy_graph.offset_of("tag") == 7
        np.testing.assert_array_equal(toy_graph.global_ids("actor"), [4, 5, 6])

    def test_node_type_index(self, toy_graph):
        idx = toy_graph.node_type_index
        assert list(idx) == [0, 0, 0, 0, 1, 1, 1, 2, 2]
        assert toy_graph.type_of(5) == "actor"

    def test_local_global_roundtrip(self, toy_graph):
        local = np.array([0, 2])
        global_ids = toy_graph.to_global("actor", local)
        np.testing.assert_array_equal(global_ids, [4, 6])
        np.testing.assert_array_equal(toy_graph.to_local("actor", global_ids),
                                      local)

    def test_zero_count_type_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph({"a": 0}, {})

    def test_bad_edge_shape_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2}, {("a", "r", "a"): np.zeros((3, 2))})

    def test_out_of_range_edges_rejected(self):
        with pytest.raises(ValueError):
            HeteroGraph({"a": 2, "b": 2},
                        {("a", "r", "b"): np.array([[0, 5], [0, 1]])})

    def test_unknown_type_rejected(self):
        with pytest.raises(KeyError):
            HeteroGraph({"a": 2}, {("a", "r", "zzz"): np.zeros((2, 0), dtype=int)})

    def test_duplicate_relation_rejected(self, toy_graph):
        with pytest.raises(KeyError):
            toy_graph.add_relation(("movie", "stars", "actor"),
                                   np.array([[0], [0]]))


class TestReverseRelations:
    def test_reverse_added_once(self, toy_graph):
        # conftest already called add_reverse_relations
        names = [rel[1] for rel in toy_graph.relations]
        assert "stars_rev" in names and "tagged_rev" in names
        before = len(toy_graph.relations)
        toy_graph.add_reverse_relations()
        assert len(toy_graph.relations) == before

    def test_reverse_edges_flipped(self, toy_graph):
        forward = toy_graph.edges_local(("movie", "stars", "actor"))
        reverse = toy_graph.edges_local(("actor", "stars_rev", "movie"))
        np.testing.assert_array_equal(forward[0], reverse[1])
        np.testing.assert_array_equal(forward[1], reverse[0])


class TestEdgesAndAdjacency:
    def test_edges_global_offsets(self, toy_graph):
        pairs = toy_graph.edges_global(("movie", "stars", "actor"))
        assert pairs[1].min() >= 4  # actor offset

    def test_num_edges(self, toy_graph):
        assert toy_graph.num_edges(("movie", "stars", "actor")) == 5
        assert toy_graph.num_edges() == 2 * (5 + 4)

    def test_all_edges_global_etype_ids(self, toy_graph):
        src, dst, etype = toy_graph.all_edges_global()
        assert src.shape == dst.shape == etype.shape
        assert etype.max() == len(toy_graph.relations) - 1

    def test_adjacency_symmetric_and_binary(self, toy_graph):
        adj = toy_graph.adjacency(symmetric=True)
        assert (adj != adj.T).nnz == 0
        assert set(np.unique(adj.data)) == {1.0}
        assert adj.diagonal().sum() == 0

    def test_adjacency_values_match_edges(self, toy_graph):
        adj = toy_graph.adjacency()
        # movie0-actor0 edge: global ids 0 and 4
        assert adj[0, 4] == 1.0 and adj[4, 0] == 1.0
        assert adj[0, 6] == 0.0

    def test_biadjacency_shape_and_entries(self, toy_graph):
        bi = toy_graph.biadjacency(("movie", "stars", "actor"))
        assert bi.shape == (4, 3)
        assert bi[0, 0] == 1 and bi[0, 1] == 1 and bi[3, 2] == 1

    def test_degrees(self, toy_graph):
        degrees = toy_graph.degrees()
        # movie0: actor0, actor1, tag0 → degree 3
        assert degrees[0] == 3
        # actor2 stars in movies 2,3 → degree 2
        assert degrees[6] == 2

    def test_neighbors(self, toy_graph):
        neigh = set(toy_graph.neighbors(0).tolist())
        assert neigh == {4, 5, 7}


class TestSubgraph:
    def test_drop_edges(self, toy_graph):
        relation = ("movie", "stars", "actor")
        mask = np.array([True, False, False, False, False])
        sub = toy_graph.subgraph_without_edges(relation, mask)
        assert sub.num_edges(relation) == 4
        assert toy_graph.num_edges(relation) == 5  # original untouched

    def test_drop_mask_length_validation(self, toy_graph):
        with pytest.raises(ValueError):
            toy_graph.subgraph_without_edges(("movie", "stars", "actor"),
                                             np.array([True]))

    def test_cache_isolation(self, toy_graph):
        adj_before = toy_graph.adjacency()
        sub = toy_graph.subgraph_without_edges(
            ("movie", "stars", "actor"), np.array([True, False, False, False,
                                                   False]))
        assert sub.adjacency().nnz < adj_before.nnz
