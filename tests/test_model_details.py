"""Behavioural tests for model-specific mechanisms (residuals, gates,
selection weights, attention simplexes)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import HandcraftedFeatures
from repro.models import build_model
from repro.tensor import Tensor, no_grad, softmax
from repro.training import set_seed


@pytest.fixture(scope="module")
def h0(imdb_tiny):
    set_seed(0)
    builder = HandcraftedFeatures(imdb_tiny, 64)
    builder.eval()
    with no_grad():
        return builder()


class TestSimpleHGNMechanisms:
    def test_edge_residual_changes_output(self, imdb_tiny, h0):
        set_seed(1)
        with_residual = build_model("simple_hgn", imdb_tiny, beta=0.5)
        set_seed(1)
        without_residual = build_model("simple_hgn", imdb_tiny, beta=0.0)
        with_residual.eval()
        without_residual.eval()
        with no_grad():
            a = with_residual(h0).data
            b = without_residual(h0).data
        assert not np.allclose(a, b)

    def test_node_residual_present(self, imdb_tiny):
        model = build_model("simple_hgn", imdb_tiny)
        assert model.layers[0].residual_proj is not None

    def test_unnormalized_output_option(self, imdb_tiny, h0):
        model = build_model("simple_hgn", imdb_tiny, normalize_output=False)
        model.eval()
        with no_grad():
            encoded = model.encode(h0)
        norms = np.linalg.norm(encoded.data, axis=-1)
        assert not np.allclose(norms, 1.0)


class TestFastGTN:
    def test_selection_weights_form_simplex(self, imdb_tiny):
        model = build_model("gtn", imdb_tiny)
        for channel in model.channels:
            weights = softmax(channel.selection, axis=-1).data
            np.testing.assert_allclose(weights.sum(axis=-1), 1.0)

    def test_identity_relation_included(self, imdb_tiny):
        model = build_model("gtn", imdb_tiny)
        adjacencies = model.channels[0].adjacencies
        # last adjacency is the identity (lets a channel skip hops)
        eye = adjacencies[-1]
        assert (eye != eye.T).nnz == 0
        np.testing.assert_allclose(eye.diagonal(), 1.0)
        assert eye.nnz == imdb_tiny.graph.num_nodes

    def test_relation_adjacencies_row_normalized(self, imdb_tiny):
        model = build_model("gtn", imdb_tiny)
        for adj in model.channels[0].adjacencies[:-1]:
            row_sums = np.asarray(adj.sum(axis=1)).ravel()
            nonzero = row_sums > 0
            np.testing.assert_allclose(row_sums[nonzero], 1.0, rtol=1e-10)


class TestHGTMechanisms:
    def test_gate_keeps_convexity(self, imdb_tiny, h0):
        """HGT output = gate*msg + (1-gate)*h with gate in (0,1)."""
        set_seed(0)
        model = build_model("hgt", imdb_tiny)
        layer = model.layers[0]
        gate = 1.0 / (1.0 + np.exp(-layer.skip.data))
        assert np.all(gate > 0) and np.all(gate < 1)

    def test_relation_priors_trainable(self, imdb_tiny, h0):
        from repro.tensor import cross_entropy
        set_seed(0)
        model = build_model("hgt", imdb_tiny)
        loss = cross_entropy(model(h0), imdb_tiny.labels)
        loss.backward()
        assert model.layers[0].rel_prior.grad is not None
        assert np.abs(model.layers[0].rel_prior.grad).sum() > 0


class TestGATNEMechanisms:
    def test_relation_attention_simplex(self, imdb_tiny, h0):
        set_seed(0)
        model = build_model("gatne", imdb_tiny)
        model.eval()
        with no_grad():
            from repro.tensor import spmm, stack, tanh
            views = [spmm(adj, model.edge_table) for adj in model.rel_adjs]
            stacked = stack(views, axis=1)
            scores = tanh(stacked @ model.attn_w) @ model.attn_q
            weights = softmax(scores.reshape(-1, model.num_rel), axis=-1).data
        np.testing.assert_allclose(weights.sum(axis=-1), 1.0)
        assert np.all(weights >= 0)


class TestHetGNNMechanisms:
    def test_samples_cover_every_type(self, imdb_tiny):
        model = build_model("hetgnn", imdb_tiny)
        for node_type, tables in model.samples.items():
            assert set(tables) == set(imdb_tiny.graph.node_types)
            n_type = imdb_tiny.graph.num_nodes_of(node_type)
            for table in tables.values():
                assert table.shape[0] == n_type

    def test_encode_preserves_global_order(self, imdb_tiny, h0):
        """Output rows follow the global type-ordered layout."""
        model = build_model("hetgnn", imdb_tiny)
        model.eval()
        with no_grad():
            encoded = model.encode(h0)
        assert encoded.shape[0] == imdb_tiny.graph.num_nodes


class TestHGCAMechanisms:
    def test_auxiliary_loss_positive_and_differentiable(self, imdb_tiny, h0):
        set_seed(0)
        model = build_model("hgca", imdb_tiny)
        model(Tensor(h0.data, requires_grad=True))
        aux = model.auxiliary_loss()
        assert aux.item() > 0
        aux.backward()
        assert model.structure_embed.grad is not None

    def test_auxiliary_loss_requires_forward(self, imdb_tiny):
        model = build_model("hgca", imdb_tiny)
        with pytest.raises(RuntimeError):
            model.auxiliary_loss()
