"""Module system (registration, state dicts) and optimizer behaviour."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tensor import (
    SGD,
    Adam,
    AdamW,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    Module,
    ModuleDict,
    ModuleList,
    Parameter,
    Sequential,
    Tensor,
    clip_grad_norm,
)


class TinyNet(Module):
    def __init__(self):
        super().__init__()
        self.fc1 = Linear(4, 8)
        self.fc2 = Linear(8, 2)
        self.drop = Dropout(0.5)

    def forward(self, x):
        return self.fc2(self.drop(self.fc1(x)))


class TestModuleSystem:
    def test_parameter_registration_recursive(self):
        net = TinyNet()
        names = [name for name, _ in net.named_parameters()]
        assert names == ["fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias"]

    def test_num_parameters(self):
        net = TinyNet()
        assert net.num_parameters() == 4 * 8 + 8 + 8 * 2 + 2

    def test_train_eval_propagates(self):
        net = TinyNet()
        net.eval()
        assert not net.drop.training
        net.train()
        assert net.drop.training

    def test_eval_disables_dropout(self):
        net = TinyNet()
        net.eval()
        x = Tensor(np.ones((3, 4)))
        first = net(x).data
        second = net(x).data
        np.testing.assert_array_equal(first, second)

    def test_state_dict_roundtrip(self):
        net = TinyNet()
        state = net.state_dict()
        for param in net.parameters():
            param.data += 1.0
        net.load_state_dict(state)
        for name, param in net.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])

    def test_state_dict_is_a_copy(self):
        net = TinyNet()
        state = net.state_dict()
        net.fc1.weight.data += 5.0
        assert not np.allclose(state["fc1.weight"], net.fc1.weight.data)

    def test_load_state_dict_key_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        del state["fc1.bias"]
        with pytest.raises(KeyError):
            net.load_state_dict(state)

    def test_load_state_dict_shape_mismatch(self):
        net = TinyNet()
        state = net.state_dict()
        state["fc1.bias"] = np.zeros(3)
        with pytest.raises(ValueError):
            net.load_state_dict(state)

    def test_zero_grad(self):
        net = TinyNet()
        out = net(Tensor(np.ones((2, 4)))).sum()
        out.backward()
        net.zero_grad()
        assert all(p.grad is None for p in net.parameters())

    def test_module_list_and_dict(self):
        layers = ModuleList([Linear(2, 2) for _ in range(3)])
        assert len(layers) == 3
        assert len(list(layers.modules())) == 4
        mapping = ModuleDict({"a": Linear(2, 2)})
        mapping["b"] = Linear(2, 3)
        assert "b" in mapping and len(list(mapping.parameters())) == 4

    def test_sequential(self):
        net = Sequential(Linear(3, 5), Linear(5, 2))
        assert net(Tensor(np.ones((4, 3)))).shape == (4, 2)
        assert len(net) == 2

    def test_embedding_lookup_and_grad(self):
        emb = Embedding(6, 3)
        out = emb(np.array([1, 1, 4]))
        assert out.shape == (3, 3)
        out.sum().backward()
        # duplicated index accumulates double gradient
        np.testing.assert_allclose(emb.weight.grad[1], 2.0)
        np.testing.assert_allclose(emb.weight.grad[4], 1.0)
        np.testing.assert_allclose(emb.weight.grad[0], 0.0)

    def test_layer_norm_module(self):
        norm = LayerNorm(5)
        out = norm(Tensor(np.random.default_rng(0).normal(size=(3, 5))))
        np.testing.assert_allclose(out.data.mean(axis=-1), 0.0, atol=1e-9)


def _quadratic_minimize(optimizer_factory, steps=300):
    target = np.array([1.0, -2.0, 3.0])
    param = Parameter(np.zeros(3))
    opt = optimizer_factory([param])
    for _ in range(steps):
        opt.zero_grad()
        loss = ((param - Tensor(target)) ** 2).sum()
        loss.backward()
        opt.step()
    return param.data, target


class TestOptimizers:
    def test_sgd_converges(self):
        result, target = _quadratic_minimize(lambda p: SGD(p, lr=0.1))
        np.testing.assert_allclose(result, target, atol=1e-4)

    def test_sgd_momentum_converges(self):
        result, target = _quadratic_minimize(
            lambda p: SGD(p, lr=0.05, momentum=0.9))
        np.testing.assert_allclose(result, target, atol=1e-4)

    def test_adam_converges(self):
        result, target = _quadratic_minimize(lambda p: Adam(p, lr=0.1))
        np.testing.assert_allclose(result, target, atol=1e-3)

    def test_adamw_converges(self):
        result, target = _quadratic_minimize(lambda p: AdamW(p, lr=0.1))
        np.testing.assert_allclose(result, target, atol=1e-3)

    def test_weight_decay_shrinks_solution(self):
        no_decay, _ = _quadratic_minimize(lambda p: Adam(p, lr=0.05))
        decayed, _ = _quadratic_minimize(
            lambda p: Adam(p, lr=0.05, weight_decay=1.0))
        assert np.linalg.norm(decayed) < np.linalg.norm(no_decay)

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_bad_lr_rejected(self):
        with pytest.raises(ValueError):
            Adam([Parameter(np.zeros(2))], lr=-1.0)

    def test_step_skips_gradless_params(self):
        p1, p2 = Parameter(np.ones(2)), Parameter(np.ones(2))
        opt = SGD([p1, p2], lr=0.5)
        (p1.sum()).backward()
        opt.step()
        np.testing.assert_allclose(p2.data, 1.0)
        assert not np.allclose(p1.data, 1.0)

    def test_clip_grad_norm(self):
        param = Parameter(np.zeros(4))
        param.grad = np.full(4, 10.0)
        total = clip_grad_norm([param], max_norm=1.0)
        assert total == pytest.approx(20.0)
        np.testing.assert_allclose(np.linalg.norm(param.grad), 1.0)
