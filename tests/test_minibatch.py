"""Mini-batch execution path: trainer parity, bounded views, search, serving."""

from __future__ import annotations

import numpy as np
import pytest

from repro.completion import (
    FixedAssignmentFeatures,
    HandcraftedFeatures,
    SearchSpace,
    SingleOpFeatures,
    WeightedCompletionFeatures,
)
from repro.core import AutoACConfig, AutoACSearcher, NodeClassificationAdapter
from repro.datasets import generate, sparse_benchmark_spec
from repro.graph import NeighborSampler
from repro.models import build_model
from repro.tensor import Tensor
from repro.training import (
    MiniBatchConfig,
    MiniBatchTrainer,
    NodeClassificationTrainer,
    TrainConfig,
    set_seed,
)


@pytest.fixture(scope="module")
def bench_small():
    """A 600-node citation-style graph with a real V⁻ (authors)."""
    return generate(sparse_benchmark_spec(num_nodes=600), seed=0)


# ----------------------------------------------------------------------
# Completion: per-row evaluation matches full evaluation
# ----------------------------------------------------------------------
class TestForwardRows:
    @pytest.mark.parametrize("op_name", ["mean", "gcn", "ppnp", "one_hot"])
    def test_rows_match_full_forward(self, imdb_tiny, op_name):
        space = SearchSpace()
        ops = space.build_ops(imdb_tiny, 16)
        op = ops[space.index(op_name)]
        rows = np.array([0, 3, 7, 11], dtype=np.int64)
        full = op().data
        np.testing.assert_allclose(op.forward_rows(rows).data, full[rows],
                                   atol=1e-12)

    def test_rows_gradient_matches_sliced_full(self, imdb_tiny):
        """d loss/dW from a row forward equals the same rows' contribution
        in the full forward (the lower-level w step stays unbiased)."""
        space = SearchSpace()
        rows = np.array([1, 4, 9], dtype=np.int64)
        op_full = space.build_ops(imdb_tiny, 8)[space.index("gcn")]
        op_rows = space.build_ops(imdb_tiny, 8)[space.index("gcn")]
        op_rows.weight.data = op_full.weight.data.copy()
        out_full = op_full()
        mask = np.zeros(out_full.shape)
        mask[rows] = 1.0
        (out_full * Tensor(mask)).sum().backward()
        op_rows.forward_rows(rows).sum().backward()
        np.testing.assert_allclose(op_rows.weight.grad, op_full.weight.grad,
                                   atol=1e-10)

    def test_builders_view_forward_matches_full_rows(self, imdb_tiny):
        sampler = NeighborSampler(imdb_tiny.graph, fanout=5, num_layers=2,
                                  seed=3)
        seeds = imdb_tiny.graph.to_global(imdb_tiny.target_type,
                                          np.arange(10))
        view = sampler.sample(seeds)
        weighted = WeightedCompletionFeatures(imdb_tiny, 16)
        rng = np.random.default_rng(0)
        w = rng.random((imdb_tiny.missing_global_ids.shape[0], 4))
        w /= w.sum(axis=1, keepdims=True)
        weighted.set_weights(Tensor(w))
        builders = [
            weighted,
            HandcraftedFeatures(imdb_tiny, 16),
            SingleOpFeatures(imdb_tiny, 16, "mean"),
            FixedAssignmentFeatures.random(imdb_tiny, 16,
                                           np.random.default_rng(1)),
        ]
        for builder in builders:
            full = builder().data
            np.testing.assert_allclose(builder(view).data,
                                       full[view.node_ids], atol=1e-10,
                                       err_msg=type(builder).__name__)


# ----------------------------------------------------------------------
# Trainer: quality parity and bounded views
# ----------------------------------------------------------------------
class TestMiniBatchTrainer:
    def test_matches_full_graph_quality(self, bench_small):
        """With fanout >= max degree and one batch covering the train
        split, the sampled path reproduces the full-graph trainer's test
        macro-F1 (well within the 1-point acceptance band — it is exact
        here because extraction keeps full-graph normalization)."""
        dataset = bench_small
        fanout = int(dataset.graph.degrees().max()) + 1

        def build():
            set_seed(3)
            features = FixedAssignmentFeatures.random(
                dataset, 32, np.random.default_rng(3))
            model = build_model("gcn", dataset, hidden_dim=32, out_dim=32,
                                dropout=0.0)
            return model, features

        model, features = build()
        full = NodeClassificationTrainer(
            model, features, dataset,
            TrainConfig(epochs=40, patience=15)).train()
        model, features = build()
        mini = MiniBatchTrainer(
            model, features, dataset,
            MiniBatchConfig(epochs=40, patience=15, batch_size=4096,
                            fanout=fanout)).train()
        assert abs(full.macro_f1 - mini.macro_f1) < 0.01
        assert abs(full.micro_f1 - mini.micro_f1) < 0.01

    def test_stochastic_batches_train(self, bench_small):
        set_seed(5)
        dataset = bench_small
        features = FixedAssignmentFeatures.random(
            dataset, 16, np.random.default_rng(5))
        model = build_model("gcn", dataset, hidden_dim=16, out_dim=16)
        trainer = MiniBatchTrainer(
            model, features, dataset,
            MiniBatchConfig(epochs=30, patience=12, batch_size=32,
                            fanout=8))
        result = trainer.train()
        # far above the 1/8 chance level of the community labels
        assert result.macro_f1 > 0.3
        assert min(result.history["train_loss"]) \
            < result.history["train_loss"][0]

    def test_views_stay_bounded(self, bench_small):
        set_seed(0)
        dataset = bench_small
        features = FixedAssignmentFeatures.random(
            dataset, 16, np.random.default_rng(0))
        model = build_model("gcn", dataset, hidden_dim=16, out_dim=16)
        config = MiniBatchConfig(epochs=2, patience=5, batch_size=16,
                                 fanout=3, batches_per_epoch=2)
        trainer = MiniBatchTrainer(model, features, dataset, config)
        trainer.train()
        assert 0 < trainer.peak_view_nodes
        assert trainer.peak_view_nodes <= trainer.sampler.max_view_nodes(
            max(16, config.eval_batch_size))

    def test_rejects_full_graph_only_model(self, imdb_tiny):
        features = HandcraftedFeatures(imdb_tiny, 16)
        model = build_model("mlp", imdb_tiny, hidden_dim=16, out_dim=16)
        with pytest.raises(ValueError, match="supports_sampling"):
            MiniBatchTrainer(model, features, imdb_tiny)

    def test_config_validation(self):
        with pytest.raises(ValueError, match="batch_size"):
            MiniBatchConfig(batch_size=0)
        with pytest.raises(ValueError, match="eval_batch_size"):
            MiniBatchConfig(eval_batch_size=0)


# ----------------------------------------------------------------------
# Search: stochastic lower level
# ----------------------------------------------------------------------
class TestMiniBatchSearch:
    def _config(self, **kwargs):
        base = dict(hidden_dim=16, out_dim=16, search_epochs=5,
                    warmup_epochs=1, patience=10, num_clusters=4,
                    minibatch=MiniBatchConfig(batch_size=16, fanout=4))
        base.update(kwargs)
        return AutoACConfig(**base)

    def test_discrete_search_runs(self, imdb_tiny):
        set_seed(0)
        searcher = AutoACSearcher(NodeClassificationAdapter(imdb_tiny),
                                  "gcn", config=self._config(), seed=0)
        result = searcher.search()
        assert result.epochs_run == 5
        assert result.assignment.shape[0] == \
            imdb_tiny.missing_global_ids.shape[0]
        assert set(np.unique(result.assignment)) <= set(range(4))

    def test_mixture_search_runs(self, imdb_tiny):
        set_seed(0)
        config = self._config(discrete=False, unrolled=False)
        searcher = AutoACSearcher(NodeClassificationAdapter(imdb_tiny),
                                  "gcn", config=config, seed=0)
        result = searcher.search()
        assert result.epochs_run == 5

    @pytest.mark.parametrize("method", ["none", "em"])
    def test_cluster_methods(self, imdb_tiny, method):
        set_seed(0)
        config = self._config(cluster_method=method)
        searcher = AutoACSearcher(NodeClassificationAdapter(imdb_tiny),
                                  "simple_hgn", config=config, seed=0)
        result = searcher.search()
        assert result.epochs_run == 5

    def test_rejects_full_graph_backbone(self, imdb_tiny):
        with pytest.raises(ValueError, match="supports_sampling"):
            AutoACSearcher(NodeClassificationAdapter(imdb_tiny), "mlp",
                           config=self._config(), seed=0)

    def test_rejects_adapter_without_batch_loss(self, imdb_tiny):
        class Stub:  # e.g. a link-prediction adapter: no per-batch loss
            def __init__(self, dataset):
                self.dataset = dataset

        with pytest.raises(ValueError, match="train_loss_on_batch"):
            AutoACSearcher(Stub(imdb_tiny), "gcn",
                           config=self._config(), seed=0)


# ----------------------------------------------------------------------
# Serving: sampled onboarding
# ----------------------------------------------------------------------
class TestSampledOnboarding:
    def test_onboard_fanout_validation(self):
        from repro.serving import EngineConfig
        with pytest.raises(ValueError, match="onboard_fanout"):
            EngineConfig(onboard_fanout=0)

    def test_sampled_onboarding_serves_and_preserves_base(self, tiny_bundle):
        from repro.serving import EngineConfig, InferenceEngine
        dataset = tiny_bundle["dataset"]
        engine = InferenceEngine(tiny_bundle["bundle"],
                                 config=EngineConfig(onboard_fanout=8),
                                 dataset=dataset)
        base = engine.predict(np.arange(5))
        relation = ("movie", "stars", "actor")
        result = engine.onboard("actor", {relation: [0, 1]})
        assert result.node_type == "actor"
        assert result.embedding is not None
        assert result.op_name is not None
        # existing predictions never change
        assert np.array_equal(engine.predict(np.arange(5)), base)
        # onboarding a target-type node yields a served prediction
        raw = np.zeros(dataset.features["movie"].shape[1])
        raw[:3] = 1.0
        movie = engine.onboard("movie", {relation: [2]}, raw_features=raw)
        assert movie.prediction is not None
        assert movie.logits is not None
        assert engine.num_onboarded == 2
