"""Perf-trajectory merge policy (repro.perf.recording).

The motivating defect: ``BENCH_perf.json`` accumulated stale
``<sha>-dirty`` rows that survived forever once the same benchmarks
were re-recorded at the clean commit.  ``merge_bench_rows`` must treat
dirty rows as provisional: superseded by a clean re-record of the same
benchmark, but kept while no clean measurement exists.
"""

import subprocess

from repro.perf.recording import (
    current_commit,
    is_dirty_commit,
    merge_bench_rows,
)


def row(name, commit, value=1.0, unit="x"):
    return {"name": name, "value": value, "unit": unit, "commit": commit}


class TestMergePolicy:
    def test_same_name_commit_is_replaced_not_duplicated(self):
        existing = [row("qps", "abc1234", value=10.0)]
        merged = merge_bench_rows(existing, [row("qps", "abc1234", value=12.0)])
        assert merged == [row("qps", "abc1234", value=12.0)]

    def test_clean_rerecord_evicts_dirty_twin_at_same_sha(self):
        existing = [row("qps", "abc1234-dirty", value=9.0),
                    row("other", "abc1234", value=1.0)]
        merged = merge_bench_rows(existing, [row("qps", "abc1234", value=11.0)])
        assert merged == [row("other", "abc1234", value=1.0),
                          row("qps", "abc1234", value=11.0)]

    def test_clean_rerecord_evicts_dirty_rows_at_other_shas(self):
        # the BENCH_perf.json case: rows stamped 7a38060-dirty must not
        # outlive a clean re-record of the same benchmark at a new commit
        existing = [row("qps", "7a38060-dirty", value=9.0),
                    row("qps", "1111111", value=8.0)]
        merged = merge_bench_rows(existing, [row("qps", "2222222", value=11.0)])
        assert merged == [row("qps", "1111111", value=8.0),
                          row("qps", "2222222", value=11.0)]

    def test_dirty_rerecord_replaces_only_its_own_row(self):
        existing = [row("qps", "abc1234", value=10.0),
                    row("qps", "abc1234-dirty", value=9.0)]
        merged = merge_bench_rows(existing,
                                  [row("qps", "abc1234-dirty", value=9.5)])
        assert merged == [row("qps", "abc1234", value=10.0),
                          row("qps", "abc1234-dirty", value=9.5)]

    def test_unrelated_names_and_dirty_only_history_survive(self):
        existing = [row("sparse", "abc1234-dirty", value=3.0),
                    row("search", "abc1234", value=2.0)]
        merged = merge_bench_rows(existing, [row("qps", "2222222", value=1.0)])
        assert merged[:2] == existing

    def test_trajectory_grows_across_clean_commits(self):
        existing = [row("qps", "1111111", value=8.0)]
        merged = merge_bench_rows(existing, [row("qps", "2222222", value=9.0)])
        assert len(merged) == 2

    def test_malformed_existing_entries_are_dropped(self):
        merged = merge_bench_rows(["junk", None, row("qps", "1111111")],
                                  [row("other", "2222222")])
        assert merged == [row("qps", "1111111"), row("other", "2222222")]

    def test_merge_is_idempotent(self):
        existing = [row("qps", "7a38060-dirty"), row("qps", "1111111"),
                    row("sparse", "1111111")]
        fresh = [row("qps", "2222222"), row("sparse", "2222222-dirty")]
        once = merge_bench_rows(existing, fresh)
        assert merge_bench_rows(once, fresh) == once


class TestCommitStamp:
    def test_is_dirty_commit(self):
        assert is_dirty_commit("7a38060-dirty")
        assert not is_dirty_commit("7a38060")
        assert not is_dirty_commit("unknown")

    def test_current_commit_matches_git_describe(self, tmp_path):
        repo_root = tmp_path / "repo"
        repo_root.mkdir()
        env = {"GIT_AUTHOR_NAME": "t", "GIT_AUTHOR_EMAIL": "t@t",
               "GIT_COMMITTER_NAME": "t", "GIT_COMMITTER_EMAIL": "t@t",
               "HOME": str(tmp_path), "PATH": "/usr/bin:/bin:/usr/local/bin"}

        def git(*argv):
            return subprocess.run(["git", *argv], cwd=repo_root, env=env,
                                  capture_output=True, text=True, check=True)

        git("init", "-q")
        (repo_root / "f.txt").write_text("one\n")
        git("add", "f.txt")
        git("commit", "-q", "-m", "seed")
        clean = current_commit(repo_root)
        assert clean != "unknown" and not is_dirty_commit(clean)
        (repo_root / "f.txt").write_text("two\n")
        assert current_commit(repo_root) == clean + "-dirty"

    def test_current_commit_outside_git_is_unknown(self, tmp_path):
        assert current_commit(tmp_path) == "unknown"
