"""Tests for adjacency normalizations, metapaths, walks, and modularity."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.graph import (
    appnp_propagate,
    collapse_regularization,
    hard_modularity,
    metapath_adjacency,
    metapath_edge_list,
    metapath_random_walks,
    modularity_value,
    ppnp_exact,
    row_normalized_adjacency,
    sym_normalized_adjacency,
    typed_neighbor_sample,
    uniform_random_walks,
)
from repro.graph.metapath import compose_biadjacency, metapath_instances


class TestNormalizations:
    def _chain(self, n=5):
        adj = sp.diags([np.ones(n - 1), np.ones(n - 1)], [1, -1]).tocsr()
        return adj

    def test_row_normalized_rows_sum_to_one(self):
        adj = self._chain()
        rn = row_normalized_adjacency(adj)
        np.testing.assert_allclose(np.asarray(rn.sum(axis=1)).ravel(), 1.0)

    def test_row_normalized_zero_degree_stays_zero(self):
        adj = sp.csr_matrix((3, 3))
        rn = row_normalized_adjacency(adj)
        assert rn.nnz == 0

    def test_sym_normalized_is_symmetric(self):
        adj = self._chain()
        sym = sym_normalized_adjacency(adj)
        assert abs(sym - sym.T).nnz == 0

    def test_sym_normalized_spectral_radius_at_most_one(self):
        adj = self._chain(7)
        sym = sym_normalized_adjacency(adj).toarray()
        eigenvalues = np.linalg.eigvalsh(sym)
        assert eigenvalues.max() <= 1.0 + 1e-10

    def test_appnp_converges_to_exact_ppnp(self):
        rng = np.random.default_rng(0)
        adj = sp.random(12, 12, density=0.3, random_state=1)
        adj = ((adj + adj.T) > 0).astype(float).tocsr()
        adj.setdiag(0)
        adj.eliminate_zeros()
        features = rng.normal(size=(12, 4))
        exact = ppnp_exact(adj, alpha=0.2) @ features
        approx = appnp_propagate(adj, features, alpha=0.2, iterations=200)
        np.testing.assert_allclose(approx, exact, atol=1e-8)

    def test_ppnp_alpha_validation(self):
        adj = self._chain()
        with pytest.raises(ValueError):
            ppnp_exact(adj, alpha=0.0)
        with pytest.raises(ValueError):
            appnp_propagate(adj, np.zeros((5, 2)), alpha=1.5)


class TestMetapaths:
    def test_metapath_adjacency_shared_actor(self, toy_graph):
        mam = metapath_adjacency(toy_graph, ("movie", "actor", "movie"))
        # movies 0 and 1 share actor 1
        assert mam[0, 1] > 0 and mam[1, 0] > 0
        # movies 2 and 3 share actor 2
        assert mam[2, 3] > 0
        # no path between movie 0 and movie 2
        assert mam[0, 2] == 0

    def test_no_self_loops(self, toy_graph):
        mam = metapath_adjacency(toy_graph, ("movie", "actor", "movie"))
        assert mam.diagonal().sum() == 0

    def test_binarize(self, toy_graph):
        mtm = metapath_adjacency(toy_graph, ("movie", "tag", "movie"),
                                 binarize=True)
        assert set(np.unique(mtm.data)) <= {1.0}

    def test_non_cyclic_rejected(self, toy_graph):
        with pytest.raises(ValueError):
            metapath_adjacency(toy_graph, ("movie", "actor"))

    def test_unknown_step_rejected(self, toy_graph):
        with pytest.raises(KeyError):
            metapath_adjacency(toy_graph, ("movie", "nonexistent", "movie"))

    def test_edge_list_matches_adjacency(self, toy_graph):
        adj = metapath_adjacency(toy_graph, ("movie", "actor", "movie"),
                                 binarize=True)
        src, dst, weight = metapath_edge_list(toy_graph,
                                              ("movie", "actor", "movie"))
        assert src.shape[0] == adj.nnz
        assert np.all(weight == 1.0)

    def test_compose_biadjacency(self, toy_graph):
        reach = compose_biadjacency(toy_graph, ("movie", "actor"))
        assert reach.shape == (4, 3)
        reach2 = compose_biadjacency(toy_graph, ("tag", "movie", "actor"))
        assert reach2.shape == (2, 3)
        # tag0 → movies 0,1 → actors 0,1
        assert reach2[0, 0] > 0 and reach2[0, 1] > 0 and reach2[0, 2] == 0

    def test_metapath_instances_endpoints_differ(self, toy_graph):
        rng = np.random.default_rng(0)
        src, center, dst = metapath_instances(
            toy_graph, ("movie", "actor", "movie"), cap_per_center=10, rng=rng)
        assert np.all(src != dst)
        # centers are actor global ids
        assert np.all((center >= 4) & (center < 7))

    def test_metapath_instances_cap(self, toy_graph):
        rng = np.random.default_rng(0)
        src, _, _ = metapath_instances(
            toy_graph, ("movie", "actor", "movie"), cap_per_center=1, rng=rng)
        # at most 1 pair per actor center
        assert src.shape[0] <= 3


class TestWalks:
    def test_uniform_walk_shape_and_validity(self, toy_graph):
        rng = np.random.default_rng(0)
        starts = np.array([0, 4, 8])
        walks = uniform_random_walks(toy_graph, starts, length=5, rng=rng)
        assert walks.shape == (3, 6)
        adj = toy_graph.adjacency()
        for walk in walks:
            for a, b in zip(walk[:-1], walk[1:]):
                assert a == b or adj[a, b] == 1.0

    def test_metapath_walk_alternates_types(self, toy_graph):
        rng = np.random.default_rng(0)
        walks = metapath_random_walks(toy_graph, ("movie", "actor", "movie"),
                                      walks_per_node=1, walk_length=4, rng=rng)
        assert walks
        type_index = toy_graph.node_type_index
        for walk in walks:
            expected = [0, 1] * 10  # movie=0, actor=1 alternating
            for position, node in enumerate(walk):
                assert type_index[node] == expected[position]

    def test_metapath_walk_requires_cycle(self, toy_graph):
        with pytest.raises(ValueError):
            metapath_random_walks(toy_graph, ("movie", "actor"), 1, 3,
                                  np.random.default_rng(0))

    def test_typed_neighbor_sample_shapes(self, toy_graph):
        rng = np.random.default_rng(0)
        samples = typed_neighbor_sample(toy_graph, "movie", budget=4, rng=rng)
        assert set(samples) == {"movie", "actor", "tag"}
        assert samples["actor"].shape == (4, 4)
        # movie 0's actor samples must be actors 0/1 (its real neighbors)
        assert set(samples["actor"][0].tolist()) <= {4, 5}

    def test_typed_neighbor_sample_padding_with_self(self, toy_graph):
        rng = np.random.default_rng(0)
        samples = typed_neighbor_sample(toy_graph, "tag", budget=2, rng=rng)
        # tags have no tag neighbors → padded with own id
        np.testing.assert_array_equal(samples["tag"][0], [7, 7])


class TestModularity:
    def _two_cliques(self):
        """Two 4-cliques joined by a single edge — crisp communities."""
        n = 8
        adj = np.zeros((n, n))
        for block in (range(4), range(4, 8)):
            for i in block:
                for j in block:
                    if i != j:
                        adj[i, j] = 1
        adj[3, 4] = adj[4, 3] = 1
        return sp.csr_matrix(adj)

    def test_hard_modularity_matches_networkx(self):
        import networkx as nx

        adj = self._two_cliques()
        labels = np.array([0] * 4 + [1] * 4)
        ours = hard_modularity(adj, labels)
        graph = nx.from_scipy_sparse_array(adj)
        reference = nx.algorithms.community.modularity(
            graph, [set(range(4)), set(range(4, 8))])
        assert ours == pytest.approx(reference, abs=1e-10)

    def test_good_partition_beats_bad(self):
        adj = self._two_cliques()
        good = hard_modularity(adj, np.array([0] * 4 + [1] * 4))
        bad = hard_modularity(adj, np.array([0, 1] * 4))
        assert good > bad

    def test_soft_assignment_interpolates(self):
        adj = self._two_cliques()
        hard = np.zeros((8, 2))
        hard[:4, 0] = 1
        hard[4:, 1] = 1
        uniform = np.full((8, 2), 0.5)
        assert modularity_value(adj, hard) > modularity_value(adj, uniform)

    def test_collapse_regularization_bounds(self):
        balanced = np.zeros((8, 2))
        balanced[:4, 0] = 1
        balanced[4:, 1] = 1
        collapsed = np.zeros((8, 2))
        collapsed[:, 0] = 1
        assert collapse_regularization(balanced) == pytest.approx(0.0, abs=1e-9)
        assert collapse_regularization(collapsed) == pytest.approx(
            np.sqrt(2) - 1, abs=1e-9)
