"""Error-path tests for the HeteroDataset container."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import HeteroDataset, Split
from repro.graph import HeteroGraph


def _graph() -> HeteroGraph:
    graph = HeteroGraph(
        {"a": 3, "b": 2},
        {("a", "r", "b"): np.array([[0, 1, 2], [0, 1, 1]])},
    )
    graph.add_reverse_relations()
    return graph


def _split() -> Split:
    return Split(train=np.array([0]), val=np.array([1]),
                 test=np.array([2]))


class TestContainerValidation:
    def test_missing_feature_entry_rejected(self):
        with pytest.raises(KeyError):
            HeteroDataset(
                name="bad", graph=_graph(), target_type="a",
                features={"a": None},  # no entry for "b"
                labels=np.array([0, 1, 0]), num_classes=2, split=_split(),
            )

    def test_wrong_label_length_rejected(self):
        with pytest.raises(ValueError):
            HeteroDataset(
                name="bad", graph=_graph(), target_type="a",
                features={"a": None, "b": np.eye(2)},
                labels=np.array([0, 1]),  # 3 target nodes
                num_classes=2, split=_split(),
            )

    def test_inconsistent_raw_dims_rejected(self):
        dataset = HeteroDataset(
            name="bad", graph=_graph(), target_type="a",
            features={"a": np.ones((3, 4)), "b": np.ones((2, 5))},
            labels=np.array([0, 1, 0]), num_classes=2, split=_split(),
        )
        with pytest.raises(ValueError):
            dataset.feature_matrix_zero_filled()

    def test_no_attributed_types_needs_dim(self):
        dataset = HeteroDataset(
            name="bare", graph=_graph(), target_type="a",
            features={"a": None, "b": None},
            labels=np.array([0, 1, 0]), num_classes=2, split=_split(),
        )
        with pytest.raises(ValueError):
            dataset.feature_matrix_zero_filled()
        out = dataset.feature_matrix_zero_filled(dim=7)
        assert out.shape == (5, 7)
        np.testing.assert_allclose(out, 0.0)

    def test_onehot_override_idempotent_for_attributed(self):
        dataset = HeteroDataset(
            name="ok", graph=_graph(), target_type="a",
            features={"a": None, "b": np.ones((2, 4))},
            labels=np.array([0, 1, 0]), num_classes=2, split=_split(),
        )
        overridden = dataset.with_handcrafted_onehot(["b", "a"])
        # b keeps its raw attributes, a gains one-hot-derived ones
        np.testing.assert_array_equal(overridden.features["b"],
                                      dataset.features["b"])
        assert overridden.features["a"].shape == (3, 4)

    def test_empty_missing_ids_for_fully_attributed(self):
        dataset = HeteroDataset(
            name="full", graph=_graph(), target_type="a",
            features={"a": np.ones((3, 4)), "b": np.ones((2, 4))},
            labels=np.array([0, 1, 0]), num_classes=2, split=_split(),
        )
        assert dataset.missing_global_ids.shape == (0,)
        assert dataset.attribute_missing_rate == 0.0
