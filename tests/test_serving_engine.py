"""InferenceEngine: micro-batching, LRU result cache, counters, HTTP API."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ModelBundle,
    ServingServer,
)


@pytest.fixture()
def engine(tiny_bundle):
    return InferenceEngine(
        ModelBundle.load(tiny_bundle["path"]),
        EngineConfig(max_batch_size=16, cache_size=4096),
        dataset=tiny_bundle["dataset"])


class TestPrediction:
    def test_matches_in_process_model_exactly(self, engine, tiny_bundle):
        n_target = engine.dataset.graph.num_nodes_of(
            engine.bundle.target_type)
        predictions = engine.predict(np.arange(n_target))
        np.testing.assert_array_equal(predictions, tiny_bundle["reference"])

    def test_scalar_and_list_inputs(self, engine):
        single = engine.predict(0)
        assert single.shape == (1,)
        batch = engine.predict([0, 1, 0])
        assert batch.shape == (3,)
        assert batch[0] == batch[2] == single[0]

    def test_labels_and_logits(self, engine):
        logits = engine.predict_logits([0, 1])
        assert logits.shape == (2, engine.bundle.num_classes)
        labels = engine.predict_labels([0, 1])
        assert labels == [engine.bundle.label_names[int(np.argmax(row))]
                          for row in logits]

    def test_out_of_range_ids_rejected(self, engine):
        n_target = engine.dataset.graph.num_nodes_of(
            engine.bundle.target_type)
        with pytest.raises(ValueError, match="out of range"):
            engine.predict([n_target])
        with pytest.raises(ValueError, match="out of range"):
            engine.predict([-1])


class TestMicroBatching:
    def test_one_forward_pass_per_batch(self, engine):
        batch = engine.config.max_batch_size
        engine.predict(np.arange(batch))
        assert engine.stats()["forward_passes"] == 1

    def test_large_request_is_one_forward(self, engine):
        """A forward computes the full matrix, so one direct call is one
        batch no matter how many ids it carries."""
        batch = engine.config.max_batch_size
        engine.predict(np.arange(2 * batch + 1))
        assert engine.stats()["forward_passes"] == 1
        assert engine.stats()["batches"] == 1

    def test_predict_batch_matches_predict(self, engine):
        results = engine.predict_batch([0, 1, 2])
        predictions = engine.predict([0, 1, 2])
        assert [entry["prediction"] for entry in results] == predictions.tolist()
        assert [entry["label"] for entry in results] == \
            engine.predict_labels([0, 1, 2])

    def test_warm_cache_skips_forwards(self, engine):
        ids = np.arange(8)
        engine.predict(ids)
        passes = engine.stats()["forward_passes"]
        engine.predict(ids)
        stats = engine.stats()
        assert stats["forward_passes"] == passes
        assert stats["cache"]["hits"] >= len(ids)

    def test_cache_capacity_is_bounded(self, tiny_bundle):
        small = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                EngineConfig(max_batch_size=8, cache_size=4),
                                dataset=tiny_bundle["dataset"])
        small.predict(np.arange(12))
        assert small.stats()["cache"]["size"] <= 4

    def test_enqueue_flush_round(self, engine):
        assert engine.enqueue(0) == 1
        assert engine.enqueue(1, kind="predict") == 2
        results = engine.flush()
        assert [entry["node_id"] for entry in results] == [0, 1]
        assert all("label" in entry for entry in results)
        assert engine.flush() == []

    def test_auto_flush_on_full_batch(self, tiny_bundle):
        engine = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 EngineConfig(max_batch_size=4, cache_size=64),
                                 dataset=tiny_bundle["dataset"])
        for node_id in range(3):
            assert engine.enqueue(node_id) == node_id + 1
        assert engine.enqueue(3) == 0  # queue hit max_batch_size and flushed
        assert engine.stats()["forward_passes"] == 1

    def test_unknown_kind_rejected(self, engine):
        with pytest.raises(ValueError, match="kind"):
            engine.enqueue(0, kind="classify")


class TestEmbedding:
    def test_embed_shape_and_cache(self, engine):
        rows = engine.embed([0, 5, 10])
        assert rows.shape == (3, engine.bundle.out_dim)
        passes = engine.stats()["forward_passes"]
        engine.embed([0, 5])
        assert engine.stats()["forward_passes"] == passes

    def test_embed_covers_non_target_nodes(self, engine):
        graph = engine.dataset.graph
        actor_gid = int(graph.global_ids("actor")[0])
        rows = engine.embed([actor_gid])
        assert rows.shape == (1, engine.bundle.out_dim)
        assert np.isfinite(rows).all()


class TestStats:
    def test_counters_and_shape(self, engine):
        engine.predict([0, 1, 2])
        stats = engine.stats()
        assert stats["queries"] == 3
        assert stats["batches"] == 1
        assert stats["bundle"]["model"] == "gcn"
        assert stats["cache"]["capacity"] == engine.config.cache_size
        assert stats["latency"]["queries_per_second"] > 0
        json.dumps(stats)  # must be JSON-able for the /stats endpoint


class TestConfigValidation:
    def test_bad_config_rejected(self):
        with pytest.raises(ValueError):
            EngineConfig(max_batch_size=0)
        with pytest.raises(ValueError):
            EngineConfig(cache_size=0)


class TestServer:
    @pytest.fixture()
    def server(self, engine):
        server = ServingServer(engine, port=0).start_background()
        yield server
        server.shutdown()

    def _get(self, server, path):
        with urllib.request.urlopen(server.url + path, timeout=10) as response:
            return response.status, json.loads(response.read())

    def _post(self, server, path, payload):
        request = urllib.request.Request(
            server.url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        try:
            with urllib.request.urlopen(request, timeout=10) as response:
                return response.status, json.loads(response.read())
        except urllib.error.HTTPError as error:
            return error.code, json.loads(error.read())

    def test_healthz(self, server):
        status, payload = self._get(server, "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["model"] == "gcn"

    def test_predict_endpoint(self, server, tiny_bundle):
        status, payload = self._post(server, "/predict",
                                     {"node_ids": [0, 1, 2]})
        assert status == 200
        np.testing.assert_array_equal(payload["predictions"],
                                      tiny_bundle["reference"][:3])
        assert len(payload["labels"]) == 3

    def test_onboard_endpoint(self, server):
        status, payload = self._post(server, "/onboard", {
            "node_type": "actor",
            "edges": {"movie:stars:actor": [0, 1]},
        })
        assert status == 200
        assert payload["node_type"] == "actor"
        assert payload["op"] in server.engine.bundle.op_names
        assert payload["embedding"] is not None

    def test_stats_endpoint(self, server):
        self._post(server, "/predict", {"node_ids": [0]})
        status, payload = self._get(server, "/stats")
        assert status == 200
        assert payload["queries"] >= 1

    def test_onboard_engine_failure_is_500(self, server):
        removed = server.engine.bundle.model_state.pop("classifier.weight")
        try:
            status, payload = self._post(server, "/onboard", {
                "node_type": "actor",
                "edges": {"movie:stars:actor": [0]},
            })
        finally:
            server.engine.bundle.model_state["classifier.weight"] = removed
        assert status == 500
        assert "inductively" in payload["error"]

    def test_bad_request_is_400(self, server):
        status, payload = self._post(server, "/predict", {})
        assert status == 400
        assert "node_ids" in payload["error"]
        status, _ = self._post(server, "/onboard", {})
        assert status == 400

    def test_unknown_path_is_404(self, server):
        status, _ = self._post(server, "/train", {})
        assert status == 404
        try:
            with urllib.request.urlopen(server.url + "/nope", timeout=10):
                raise AssertionError("expected 404")
        except urllib.error.HTTPError as error:
            assert error.code == 404
