"""ServingServer under hostile traffic, overload, and injected faults.

The recurring assertion shape: abuse the server, then prove ``/healthz``
still answers 200 — one bad request (or one bad client) must never take
the serving thread pool down.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
import urllib.error
import urllib.request

import pytest

from repro.faults import FaultPlan, FaultRule, armed
from repro.serving import (
    EngineConfig,
    InferenceEngine,
    ModelBundle,
    ServerConfig,
    ServingServer,
)


@pytest.fixture()
def engine(tiny_bundle):
    return InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                           EngineConfig(max_batch_size=16),
                           dataset=tiny_bundle["dataset"])


def _server(engine, **config_kwargs):
    config = ServerConfig(**config_kwargs)
    return ServingServer(engine, port=0, config=config).start_background()


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=10) as response:
        return response.status, json.loads(response.read())


def _post(server, path, payload, headers=None):
    request = urllib.request.Request(
        server.url + path, data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json", **(headers or {})})
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read()), response
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read()), error


def _raw(server, data: bytes, shutdown_write=True) -> bytes:
    """Ship raw bytes at the server socket, return whatever comes back."""
    host, port = server.address
    with socket.create_connection((host, port), timeout=10) as sock:
        sock.sendall(data)
        if shutdown_write:
            sock.shutdown(socket.SHUT_WR)
        sock.settimeout(10)
        chunks = []
        try:
            while True:
                chunk = sock.recv(4096)
                if not chunk:
                    break
                chunks.append(chunk)
        except socket.timeout:
            pass
        return b"".join(chunks)


def _assert_alive(server):
    status, payload = _get(server, "/healthz")
    assert status == 200 and payload["status"] == "ok"


class TestMalformedTraffic:
    @pytest.fixture()
    def server(self, engine):
        server = _server(engine)
        yield server
        server.shutdown()

    def test_invalid_json_body_is_400(self, server):
        reply = _raw(server,
                     b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                     b"Content-Length: 9\r\n\r\n{\"node_id")
        assert b"400" in reply.split(b"\r\n", 1)[0]
        _assert_alive(server)

    def test_truncated_body_is_400_not_a_hang(self, server):
        # Content-Length promises 50 bytes, the client sends 10 and
        # half-closes: the read comes up short and must answer, not block
        reply = _raw(server,
                     b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                     b"Content-Length: 50\r\n\r\n0123456789")
        assert b"400" in reply.split(b"\r\n", 1)[0]
        _assert_alive(server)

    def test_client_disconnect_mid_request_is_survived(self, server):
        host, port = server.address
        with socket.create_connection((host, port), timeout=10) as sock:
            sock.sendall(b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 5000\r\n\r\npartial")
            # hard close with the body unsent (RST, not FIN-drain)
            sock.setsockopt(socket.SOL_SOCKET, socket.SO_LINGER,
                            struct.pack("ii", 1, 0))
        _assert_alive(server)

    def test_unsupported_method_is_501(self, server):
        reply = _raw(server, b"PUT /predict HTTP/1.1\r\nHost: x\r\n"
                             b"Content-Length: 0\r\n\r\n")
        assert b"501" in reply.split(b"\r\n", 1)[0]
        _assert_alive(server)

    def test_garbage_request_line_is_rejected(self, server):
        reply = _raw(server, b"\x00\x01GARBAGE\r\n\r\n")
        status_line = reply.split(b"\r\n", 1)[0] if reply else b""
        assert b"200" not in status_line
        _assert_alive(server)

    def test_unknown_paths_are_404(self, server):
        status, payload, _ = _post(server, "/train", {})
        assert status == 404 and "unknown path" in payload["error"]
        _assert_alive(server)

    def test_non_object_json_is_400(self, server):
        status, payload, _ = _post(server, "/predict", [1, 2, 3])
        assert status == 400 and "JSON object" in payload["error"]
        _assert_alive(server)


class TestBodyLimit:
    def test_oversized_body_is_413(self, engine):
        server = _server(engine, max_body_bytes=256)
        try:
            status, payload, _ = _post(
                server, "/predict", {"node_ids": list(range(200))})
            assert status == 413
            assert "exceeds" in payload["error"]
            # within the limit still works
            status, payload, _ = _post(server, "/predict", {"node_ids": [0]})
            assert status == 200
            _assert_alive(server)
        finally:
            server.shutdown()

    def test_oversized_body_is_refused_unread(self, engine):
        # the 413 must come back even if the client never sends the
        # body — proof the server rejects on the header alone
        server = _server(engine, max_body_bytes=256)
        try:
            reply = _raw(server,
                         b"POST /predict HTTP/1.1\r\nHost: x\r\n"
                         b"Content-Length: 10000000\r\n\r\n",
                         shutdown_write=False)
            assert b"413" in reply.split(b"\r\n", 1)[0]
            _assert_alive(server)
        finally:
            server.shutdown()


class TestDeadlines:
    def test_expired_deadline_is_504(self, engine):
        # 5 ms budget + 150 ms injected latency at the flush site: the
        # deadline is gone by the forward checkpoint, every time
        delay = FaultPlan([FaultRule(site="engine.flush", action="delay",
                                     latency_ms=150)])
        server = _server(engine, deadline_ms=5.0)
        try:
            with armed(delay, export_env=False):
                status, payload, _ = _post(server, "/predict",
                                           {"node_ids": [0]})
            assert status == 504
            assert "deadline" in payload["error"]
            _assert_alive(server)
            # without the latency the same request fits its budget
            status, _, _ = _post(server, "/predict", {"node_ids": [0]})
            assert status == 200
        finally:
            server.shutdown()


class TestLoadShedding:
    def test_overload_sheds_503_with_retry_after(self, engine):
        delay = FaultPlan([FaultRule(site="engine.flush", action="delay",
                                     latency_ms=400, max_hits=1)])
        server = _server(engine, max_inflight=1, max_queue=0)
        statuses, retry_after = [], []
        lock = threading.Lock()

        def fire(node_id):
            status, _, response = _post(server, "/predict",
                                        {"node_ids": [node_id]})
            with lock:
                statuses.append(status)
                if status == 503:
                    retry_after.append(response.headers.get("Retry-After"))

        try:
            with armed(delay, export_env=False):
                threads = [threading.Thread(target=fire, args=(i,))
                           for i in range(6)]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join()
            assert statuses.count(200) >= 1          # someone got served
            assert statuses.count(503) >= 1          # someone was shed
            assert all(value and int(value) >= 1 for value in retry_after)
            # health stays answerable while POSTs are saturated
            _assert_alive(server)
            shed = engine.metrics.snapshot().get("http_requests_shed_total")
            assert shed is not None
            assert sum(shed["samples"].values()) >= 1
        finally:
            server.shutdown()


class TestCircuitBreaker:
    def test_onboard_breaker_opens_after_repeated_failures(self, engine):
        boom = FaultPlan([FaultRule(site="onboard.apply", action="raise",
                                    message="disk on fire")])
        server = _server(engine, breaker_failures=2, breaker_cooldown_s=60)
        payload = {"node_type": "nope", "edges": {}}
        try:
            with armed(boom, export_env=False):
                first = [_post(server, "/onboard", payload)[0]
                         for _ in range(2)]
                assert first == [500, 500]           # real failures surface
                status, body, response = _post(server, "/onboard", payload)
                assert status == 503                 # breaker now open
                assert "circuit-open" in body["error"]
                assert int(response.headers["Retry-After"]) >= 1
            # the breaker guards /onboard only — /predict is unaffected
            status, _, _ = _post(server, "/predict", {"node_ids": [0]})
            assert status == 200
            _assert_alive(server)
        finally:
            server.shutdown()


class TestShutdown:
    def test_shutdown_reports_dead_thread_and_sheds_late_posts(self, engine):
        server = _server(engine)
        _assert_alive(server)
        server.shutdown()
        # the serve thread is joined and verified dead — shutdown() would
        # have raised otherwise; the socket is closed
        assert server._thread is None
        with pytest.raises((ConnectionRefusedError, OSError)):
            _get(server, "/healthz")

    def test_drained_server_sheds_posts_before_socket_close(self, engine):
        server = _server(engine)
        try:
            server.admission.drain()
            status, payload, _ = _post(server, "/predict", {"node_ids": [0]})
            assert status == 503 and "draining" in payload["error"]
            # liveness still answers during the drain window
            _assert_alive(server)
        finally:
            server.shutdown()

    def test_sigterm_drain_stops_accepting_then_exits(self, engine):
        # in-process analogue of the SIGTERM path: the drainer thread
        # calls shutdown() while the accept loop is running
        server = _server(engine)
        _assert_alive(server)
        drainer = threading.Thread(target=server.shutdown)
        drainer.start()
        drainer.join(timeout=10)
        assert not drainer.is_alive()
        with pytest.raises((ConnectionRefusedError, OSError)):
            _get(server, "/healthz")
