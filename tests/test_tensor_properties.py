"""Hypothesis property-based tests for the autograd engine."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.tensor import (
    Tensor,
    gradcheck,
    scatter_add,
    segment_softmax,
    softmax,
)
from repro.tensor.tensor import unbroadcast

SMALL_FLOATS = hnp.arrays(
    dtype=np.float64,
    shape=hnp.array_shapes(min_dims=1, max_dims=3, min_side=1, max_side=4),
    elements=st.floats(-3.0, 3.0, allow_nan=False),
)


@given(SMALL_FLOATS)
@settings(max_examples=40, deadline=None)
def test_add_mul_gradients_any_shape(data):
    a = Tensor(data + 0.1, requires_grad=True)
    b = Tensor(np.ones_like(data) * 0.7, requires_grad=True)
    gradcheck(lambda x, y: x * y + x, [a, b])


@given(SMALL_FLOATS)
@settings(max_examples=40, deadline=None)
def test_unbroadcast_inverts_broadcasting(data):
    target_shape = data.shape
    broadcast = np.broadcast_to(data, (2,) + target_shape)
    reduced = unbroadcast(broadcast.copy(), target_shape)
    np.testing.assert_allclose(reduced, data * 2)


@given(hnp.arrays(dtype=np.float64, shape=st.tuples(
    st.integers(1, 6), st.integers(2, 5)),
    elements=st.floats(-5, 5, allow_nan=False)))
@settings(max_examples=40, deadline=None)
def test_softmax_simplex(data):
    out = softmax(Tensor(data)).data
    assert np.all(out >= 0)
    np.testing.assert_allclose(out.sum(axis=-1), 1.0, rtol=1e-9)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_scatter_gather_roundtrip(data):
    n_seg = data.draw(st.integers(1, 5))
    n_rows = data.draw(st.integers(1, 10))
    seg = data.draw(hnp.arrays(np.int64, n_rows,
                               elements=st.integers(0, n_seg - 1)))
    values = data.draw(hnp.arrays(np.float64, (n_rows, 2),
                                  elements=st.floats(-2, 2, allow_nan=False)))
    out = scatter_add(Tensor(values), seg, n_seg).data
    manual = np.zeros((n_seg, 2))
    for row, s in enumerate(seg):
        manual[s] += values[row]
    np.testing.assert_allclose(out, manual, atol=1e-12)


@given(st.data())
@settings(max_examples=30, deadline=None)
def test_segment_softmax_is_partitioned_simplex(data):
    n_seg = data.draw(st.integers(1, 4))
    n_rows = data.draw(st.integers(1, 12))
    seg = data.draw(hnp.arrays(np.int64, n_rows,
                               elements=st.integers(0, n_seg - 1)))
    scores = data.draw(hnp.arrays(np.float64, n_rows,
                                  elements=st.floats(-4, 4, allow_nan=False)))
    out = segment_softmax(Tensor(scores), seg, n_seg).data
    assert np.all(out >= 0)
    for s in np.unique(seg):
        np.testing.assert_allclose(out[seg == s].sum(), 1.0, rtol=1e-8)


@given(hnp.arrays(dtype=np.float64, shape=st.tuples(
    st.integers(1, 4), st.integers(1, 4)),
    elements=st.floats(0.1, 3.0, allow_nan=False)))
@settings(max_examples=30, deadline=None)
def test_chain_rule_composition(data):
    """(sum of x^2)' == 2x through an arbitrary composition path."""
    x = Tensor(data, requires_grad=True)
    ((x * x).sum()).backward()
    np.testing.assert_allclose(x.grad, 2 * data, rtol=1e-10)


@given(hnp.arrays(dtype=np.float64, shape=st.integers(1, 8),
                  elements=st.floats(-2, 2, allow_nan=False)))
@settings(max_examples=30, deadline=None)
def test_linearity_of_gradient(vec):
    """grad of (a·x) is a, independent of x."""
    coeffs = np.arange(1.0, vec.size + 1.0)
    x = Tensor(vec, requires_grad=True)
    (x * coeffs).sum().backward()
    np.testing.assert_allclose(x.grad, coeffs)
