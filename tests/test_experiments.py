"""Smoke tests for the experiment drivers and reporting (minimal slices)."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.experiments import figures, reporting, tables
from repro.experiments.configs import (
    PAPER_LAMBDA,
    PAPER_NUM_CLUSTERS,
    autoac_config,
    preset,
)


class TestConfigs:
    def test_preset_lookup(self):
        p = preset("tiny")
        assert p.scale == "tiny"
        with pytest.raises(KeyError):
            preset("cosmic")

    def test_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "small")
        assert preset(None).scale == "small"

    def test_autoac_config_uses_paper_hyperparameters(self):
        p = preset("tiny")
        config = autoac_config("simple_hgn", "imdb", p)
        assert config.num_clusters == PAPER_NUM_CLUSTERS[("simple_hgn", "imdb")]
        assert config.lambda_cluster == PAPER_LAMBDA["simple_hgn"]

    def test_autoac_config_overrides(self):
        p = preset("tiny")
        config = autoac_config("simple_hgn", "imdb", p, num_clusters=3)
        assert config.num_clusters == 3


@pytest.mark.slow
class TestTableDrivers:
    """Each driver runs on the smallest possible slice."""

    def test_table3_slice(self):
        result = tables.table3(scale="tiny", datasets=("imdb",),
                               backbones=("simple_hgn",), seed=0)
        rows = result["rows"]
        assert set(rows) == {"simple_hgn", "simple_hgn-hgnnac",
                             "simple_hgn-autoac"}
        rendered = reporting.render_node_clf_table(result)
        assert "imdb macro" in rendered
        payload = json.loads(reporting.to_json(
            {k: v for k, v in result.items() if k != "rows"}))
        assert payload["table"] == "III"

    def test_table9_slice(self):
        result = tables.table9(scale="tiny", datasets=("imdb",), seed=0)
        ladder = result["rows"]["imdb"]
        assert len(ladder) == len(tables.MISSING_RATE_LADDERS["imdb"])
        rates = [row["missing_rate"] for row in ladder]
        assert rates == sorted(rates)
        assert rates[0] == 0.0
        rendered = reporting.render_table9(result)
        assert "imdb" in rendered

    def test_figure5_slice(self):
        result = figures.figure5(scale="tiny", datasets=("imdb",),
                                 backbones=("simple_hgn",), seed=0)
        dist = result["distributions"]["simple_hgn"]["imdb"]
        assert abs(sum(dist.values()) - 1.0) < 1e-9
        rendered = reporting.render_figure5(result)
        assert "simple_hgn / imdb" in rendered


class TestReporting:
    def test_render_bar_chart(self):
        lines = reporting.render_bar_chart({"a": 0.5, "b": 1.0}, width=10)
        assert len(lines) == 2
        assert "##########" in lines[1]

    def test_render_figure4_sparkline(self):
        result = {"figure": "4", "traces": {"imdb": [1.0, 0.8, 0.6, 0.4]}}
        out = reporting.render_figure4(result)
        assert "imdb" in out and "start=" in out

    def test_to_json_handles_numpy(self):
        payload = {"x": np.float64(1.5), "y": np.arange(3)}
        decoded = json.loads(reporting.to_json(payload))
        assert decoded == {"x": 1.5, "y": [0, 1, 2]}

    def test_render_table10(self):
        result = {"table": "X", "datasets": ["imdb"], "rows": {"imdb": [
            {"mask_rate": 0.1, "baseline_roc_auc": 0.6, "baseline_mrr": 0.5,
             "autoac_roc_auc": 0.7, "autoac_mrr": 0.6}]}}
        out = reporting.render_table10(result)
        assert "10%" in out
