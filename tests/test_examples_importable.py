"""The example scripts must stay importable and expose a main() entry.

Full executions are exercised manually / in the bench logs (they train
models for minutes); here we verify they parse, import against the current
API, and wire an argparse interface — the failure mode that actually bites
example code is drift against the library.
"""

from __future__ import annotations

import importlib.util
import pathlib
import sys

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_imports_and_has_main(path):
    spec = importlib.util.spec_from_file_location(f"example_{path.stem}", path)
    module = importlib.util.module_from_spec(spec)
    # import executes top-level code only (main() is guarded)
    sys.modules[spec.name] = module
    try:
        spec.loader.exec_module(module)
    finally:
        sys.modules.pop(spec.name, None)
    assert hasattr(module, "main"), f"{path.name} must define main()"
    assert callable(module.main)


def test_expected_example_set():
    names = {path.stem for path in EXAMPLES}
    assert {"quickstart", "imdb_genre_classification",
            "lastfm_recommendation", "custom_completion_op",
            "search_analysis"} <= names
