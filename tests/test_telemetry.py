"""Tests for ``repro.telemetry`` and its integration across the stack.

Covers the ISSUE-7 acceptance criteria: exact counters under thread
hammering, shard-merge == single-process histograms, valid Prometheus
exposition from ``/metrics`` covering engine + onboarding + trainer
metrics, a traced request producing an http → batch → forward span
chain under one trace id, and ``stats()`` staying JSON-compatible
while growing p50/p95/p99.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import numpy as np
import pytest

from repro import telemetry
from repro.serving import EngineConfig, InferenceEngine, ModelBundle, ServingServer
from repro.telemetry import (
    EventSink,
    MetricError,
    MetricsRegistry,
    Tracer,
    merge_snapshots,
    parse_prometheus,
    percentile_from_buckets,
    render_prometheus,
)


@pytest.fixture()
def fresh_registry():
    """Swap in a clean global registry so counts are exact per test."""
    previous = telemetry.set_registry(MetricsRegistry())
    yield telemetry.get_registry()
    telemetry.set_registry(previous)


@pytest.fixture()
def engine(tiny_bundle):
    return InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                           dataset=tiny_bundle["dataset"])


def _traced_engine(tiny_bundle, **config):
    buffer = io.StringIO()
    tracer = Tracer(EventSink(buffer))
    engine = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                             config=EngineConfig(**config) if config else None,
                             dataset=tiny_bundle["dataset"], tracer=tracer)
    return engine, buffer


# ----------------------------------------------------------------------
class TestMetricsRegistry:
    def test_counter_labels_and_totals(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", "help", labels=("kind",))
        counter.inc(kind="a")
        counter.inc(2.5, kind="b")
        assert counter.value(kind="a") == 1
        assert counter.value(kind="b") == 2.5
        assert counter.total() == 3.5

    def test_counter_rejects_decrease_and_wrong_labels(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("kind",))
        with pytest.raises(MetricError):
            counter.inc(-1, kind="a")
        with pytest.raises(MetricError):
            counter.inc(wrong="a")
        with pytest.raises(MetricError):
            counter.inc()

    def test_acquisition_is_idempotent_but_spec_checked(self):
        registry = MetricsRegistry()
        first = registry.counter("c_total", labels=("kind",))
        assert registry.counter("c_total", labels=("kind",)) is first
        with pytest.raises(MetricError):
            registry.counter("c_total", labels=("other",))
        with pytest.raises(MetricError):
            registry.gauge("c_total")
        with pytest.raises(MetricError):
            registry.histogram("h", buckets=(0.5, 0.1))  # not increasing
        registry.histogram("h2", buckets=(0.1, 0.5))
        with pytest.raises(MetricError):
            registry.histogram("h2", buckets=(0.1, 0.9))

    def test_gauge_aggregations(self):
        registry = MetricsRegistry()
        depth = registry.gauge("depth", aggregation="sum")
        depth.set(4)
        depth.dec()
        assert depth.value() == 3
        with pytest.raises(MetricError):
            registry.gauge("g2", aggregation="median")

    def test_histogram_percentiles(self):
        registry = MetricsRegistry()
        hist = registry.histogram("h", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 1.5, 1.6, 3.0):
            hist.observe(value)
        # rank interpolation: p50 falls in the (1, 2] bucket
        assert 1.0 <= hist.percentile(0.5) <= 2.0
        # the overflow bucket reports the last finite bound
        hist.observe(100.0, count=50)
        assert hist.percentile(0.99) == 4.0
        assert hist.count_total() == 54
        assert percentile_from_buckets((1.0,), [0, 0], 0.5) == 0.0

    def test_snapshot_is_json_able(self):
        registry = MetricsRegistry()
        registry.counter("c_total", labels=("kind",)).inc(kind="x")
        registry.histogram("h").observe(0.1)
        json.dumps(registry.snapshot())


class TestSnapshotMerge:
    def test_merge_of_shards_equals_single_process(self):
        """The multi-worker aggregation contract, property-style."""
        rng = np.random.default_rng(7)
        for _ in range(5):
            values = rng.gamma(1.0, 0.01, size=400)
            kinds = rng.choice(["hit", "miss"], size=400)
            single = MetricsRegistry()
            shards = [MetricsRegistry() for _ in range(4)]
            owner = rng.integers(0, 4, size=400)
            for registry in [single] + shards:
                registry.histogram("lat", labels=("cache",))
                registry.counter("n_total", labels=("cache",))
            for value, kind, shard in zip(values, kinds, owner):
                for registry in (single, shards[shard]):
                    registry.get("lat").observe(value, cache=kind)
                    registry.get("n_total").inc(cache=kind)
            merged = merge_snapshots([s.snapshot() for s in shards])
            expected = single.snapshot()
            for label in ("hit", "miss"):
                key = json.dumps([label])
                got = merged["lat"]["samples"][key]
                want = expected["lat"]["samples"][key]
                assert got["counts"] == want["counts"]
                assert got["count"] == want["count"]
                assert got["sum"] == pytest.approx(want["sum"])
                assert (merged["n_total"]["samples"][key]
                        == expected["n_total"]["samples"][key])
            # rendering the merge is identical up to float noise in sums
            assert (parse_prometheus(render_prometheus(merged))["samples"]
                    .keys()
                    == parse_prometheus(render_prometheus(expected))
                    ["samples"].keys())

    def test_merge_rejects_conflicting_shapes(self):
        a = MetricsRegistry()
        b = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 0.5))
        b.histogram("h", buckets=(0.1, 0.9))
        a.get("h").observe(0.2)
        b.get("h").observe(0.2)
        with pytest.raises(MetricError):
            merge_snapshots([a.snapshot(), b.snapshot()])

    def test_gauge_merge_follows_aggregation(self):
        shards = []
        for value in (3.0, 7.0, 5.0):
            registry = MetricsRegistry()
            registry.gauge("depth", aggregation="sum").set(value)
            registry.gauge("peak", aggregation="max").set(value)
            shards.append(registry.snapshot())
        merged = merge_snapshots(shards)
        assert merged["depth"]["samples"]["[]"] == 15.0
        assert merged["peak"]["samples"]["[]"] == 7.0


class TestExposition:
    def test_render_parse_round_trip(self):
        registry = MetricsRegistry()
        registry.counter("c_total", "a counter", labels=("k",)).inc(
            3, k='we"ird\\la\nbel')
        registry.gauge("g", "a gauge").set(2.5)
        registry.histogram("h", "a histogram", buckets=(0.1, 1.0)).observe(
            0.5, count=4)
        parsed = parse_prometheus(render_prometheus(registry.snapshot()))
        samples = parsed["samples"]
        assert samples[("c_total", (("k", 'we"ird\\la\nbel'),))] == 3
        assert samples[("g", ())] == 2.5
        assert samples[("h_bucket", (("le", "1"),))] == 4
        assert samples[("h_count", ())] == 4
        assert parsed["meta"]["h"]["type"] == "histogram"

    def test_parser_rejects_garbage(self):
        with pytest.raises(MetricError):
            parse_prometheus("this is { not a metric")


class TestTracing:
    def test_span_nesting_and_trace_propagation(self):
        buffer = io.StringIO()
        tracer = Tracer(EventSink(buffer))
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner") as inner:
                assert inner.trace_id == outer.trace_id
                assert inner.parent_id == outer.span_id
            tracer.event("marker", x=2)
        records = [json.loads(line) for line in
                   buffer.getvalue().splitlines()]
        kinds = [record["kind"] for record in records]
        assert kinds == ["span", "event", "span"]
        assert len({record["trace_id"] for record in records}) == 1
        assert records[-1]["name"] == "outer"
        assert records[-1]["attrs"] == {"a": 1}

    def test_disabled_tracer_is_inert(self):
        tracer = Tracer(None)
        with tracer.span("anything") as span:
            span.set(ignored=True)
            assert span.trace_id is None
        tracer.event("nothing")

    def test_span_records_errors(self):
        buffer = io.StringIO()
        tracer = Tracer(EventSink(buffer))
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        record = json.loads(buffer.getvalue())
        assert record["attrs"]["error"] == "RuntimeError"


# ----------------------------------------------------------------------
class TestConcurrency:
    def test_counters_exact_under_thread_hammer(self):
        registry = MetricsRegistry()
        counter = registry.counter("c_total", labels=("worker",))
        hist = registry.histogram("h")

        def hammer(worker: int) -> None:
            for _ in range(2000):
                counter.inc(worker=str(worker))
                hist.observe(0.001)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.total() == 8 * 2000
        assert hist.count_total() == 8 * 2000

    def test_engine_hammer_no_lost_increments(self, engine):
        """predict + enqueue/flush + stats from N threads: exact counts."""
        num_threads, rounds, ids_per_call = 6, 25, 3
        errors = []

        def hammer(worker: int) -> None:
            rng = np.random.default_rng(worker)
            try:
                for _ in range(rounds):
                    ids = rng.integers(0, 8, size=ids_per_call)
                    engine.predict(ids)
                    engine.enqueue(int(rng.integers(0, 8)))
                    engine.flush()
                    engine.stats()
            except Exception as error:  # noqa: BLE001
                errors.append(error)

        threads = [threading.Thread(target=hammer, args=(w,))
                   for w in range(num_threads)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        engine.flush()
        assert not errors
        expected = num_threads * rounds * (ids_per_call + 1)
        stats = engine.stats()
        assert stats["queries"] == expected
        assert engine._m_queries.total() == expected
        counter = engine.metrics.get("engine_cache_requests_total")
        assert counter.total() == expected
        hist = engine.metrics.get("engine_query_seconds")
        assert hist.count_total() == expected
        # the exposition of the hammered registry still parses cleanly
        parsed = parse_prometheus(engine.metrics.render())
        assert parsed["samples"][("engine_queries_total",
                                  (("kind", "predict"),))] == expected


# ----------------------------------------------------------------------
class TestEngineTelemetry:
    def test_stats_keeps_legacy_keys_and_adds_percentiles(self, engine):
        engine.predict([0, 1, 2])
        engine.predict([0, 1, 2])  # warm: all hits
        stats = engine.stats()
        json.dumps(stats)
        for key in ("bundle", "uptime_seconds", "queries", "batches",
                    "forward_passes", "pending", "onboarded", "cache",
                    "latency"):
            assert key in stats
        latency = stats["latency"]
        for key in ("total_batch_seconds", "mean_query_ms",
                    "queries_per_second", "p50_ms", "p95_ms", "p99_ms",
                    "mean_hit_ms", "mean_miss_ms"):
            assert key in latency
        assert stats["queries"] == 6
        assert stats["forward_passes"] == 1
        # a cold query costs a model forward; a warm hit is a dict lookup
        assert latency["mean_miss_ms"] > latency["mean_hit_ms"]
        assert latency["p99_ms"] >= latency["p50_ms"] >= 0.0

    def test_hit_miss_split_in_histogram(self, engine):
        hist = engine.metrics.get("engine_query_seconds")
        engine.predict([0, 1])          # 2 misses (one forward)
        engine.predict([0, 1])          # 2 hits
        assert hist.child_count(cache="miss") == 2
        assert hist.child_count(cache="hit") == 2
        assert (hist.child_sum(cache="miss") / 2
                > hist.child_sum(cache="hit") / 2)

    def test_batch_with_duplicates_counts_every_request(self, engine):
        engine.predict([3, 3, 3])
        assert engine.stats()["queries"] == 3
        assert engine.stats()["forward_passes"] == 1

    def test_trace_chain_batch_to_forward(self, tiny_bundle):
        engine, buffer = _traced_engine(tiny_bundle)
        engine.predict([0])
        records = [json.loads(line) for line in
                   buffer.getvalue().splitlines()]
        by_name = {record["name"]: record for record in records}
        assert set(by_name) == {"batch", "forward"}
        assert (by_name["forward"]["parent_id"]
                == by_name["batch"]["span_id"])
        assert (by_name["forward"]["trace_id"]
                == by_name["batch"]["trace_id"])
        # the forward span captured op-level data via repro.tensor._profile
        assert by_name["forward"]["attrs"]["ops"]

    def test_enqueue_flush_spans_share_trace(self, tiny_bundle):
        engine, buffer = _traced_engine(tiny_bundle, auto_flush=False)
        engine.enqueue(0)
        engine.enqueue(1)
        engine.flush()
        records = [json.loads(line) for line in
                   buffer.getvalue().splitlines()]
        names = [record["name"] for record in records]
        assert names.count("enqueue") == 2
        assert "flush" in names and "batch" in names
        flush = next(r for r in records if r["name"] == "flush")
        batch = next(r for r in records if r["name"] == "batch")
        assert batch["trace_id"] == flush["trace_id"]
        assert batch["parent_id"] == flush["span_id"]

    def test_pending_gauge_tracks_queue_depth(self, tiny_bundle):
        engine, _ = _traced_engine(tiny_bundle, auto_flush=False)
        gauge = engine.metrics.get("engine_pending_queries")
        engine.enqueue(0)
        engine.enqueue(1)
        assert gauge.value() == 2
        engine.flush()
        assert gauge.value() == 0


# ----------------------------------------------------------------------
class TestServingServerTelemetry:
    @pytest.fixture()
    def server(self, tiny_bundle):
        buffer = io.StringIO()
        sink = EventSink(buffer)
        engine = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 dataset=tiny_bundle["dataset"],
                                 tracer=Tracer(sink))
        server = ServingServer(engine, port=0,
                               access_sink=sink).start_background()
        server.trace_buffer = buffer
        yield server
        server.shutdown()

    @staticmethod
    def _get(server, path):
        try:
            with urllib.request.urlopen(server.url + path) as reply:
                return reply.status, reply.read().decode(), dict(
                    reply.headers)
        except urllib.error.HTTPError as error:
            return error.code, error.read().decode(), dict(error.headers)

    @staticmethod
    def _post(server, path, payload):
        request = urllib.request.Request(
            server.url + path, data=json.dumps(payload).encode(),
            headers={"Content-Type": "application/json"})
        with urllib.request.urlopen(request) as reply:
            return reply.status, json.loads(reply.read())

    @staticmethod
    def _records(server, done, timeout=5.0):
        """Sink records, polling until ``done(records)`` — the handler
        emits its root span and access record *after* the response
        bytes, so the client can observe the reply first."""
        deadline = time.monotonic() + timeout
        while True:
            records = [json.loads(line) for line in
                       server.trace_buffer.getvalue().splitlines()]
            if done(records) or time.monotonic() > deadline:
                return records
            time.sleep(0.01)

    def test_liveness_vs_readiness_split(self, server):
        status, body, _ = self._get(server, "/healthz")
        assert status == 200 and json.loads(body)["check"] == "liveness"
        status, body, _ = self._get(server, "/readyz")
        assert status == 200 and json.loads(body)["status"] == "ready"
        server.set_ready(False)
        status, body, _ = self._get(server, "/readyz")
        assert status == 503 and json.loads(body)["status"] == "unready"
        # liveness is NOT gated on readiness
        status, _, _ = self._get(server, "/healthz")
        assert status == 200
        server.set_ready(True)
        assert self._get(server, "/readyz")[0] == 200

    def test_metrics_endpoint_covers_the_stack(self, server, fresh_registry,
                                               tiny_bundle):
        # engine traffic + onboarding + a training run in-process
        self._post(server, "/predict", {"node_ids": [0, 1]})
        self._post(server, "/onboard",
                   {"node_type": "actor",
                    "edges": {"movie:stars:actor": [0, 1]}})
        from repro.completion import HandcraftedFeatures
        from repro.models import build_model
        from repro.training import NodeClassificationTrainer, TrainConfig

        dataset = tiny_bundle["dataset"]
        trainer = NodeClassificationTrainer(
            build_model("gcn", dataset, hidden_dim=8, out_dim=8),
            HandcraftedFeatures(dataset, 8), dataset,
            TrainConfig(epochs=2, patience=5))
        trainer.train()

        status, text, headers = self._get(server, "/metrics")
        assert status == 200
        assert headers["Content-Type"].startswith("text/plain")
        samples = parse_prometheus(text)["samples"]
        names = {name for name, _ in samples}
        # engine query/latency/cache
        assert {"engine_queries_total", "engine_batches_total",
                "engine_cache_requests_total",
                "engine_query_seconds_bucket"} <= names
        # onboarding
        assert samples[("onboard_nodes_total",
                        (("node_type", "actor"),))] == 1
        # trainer epochs (global registry, merged into the scrape)
        assert samples[("train_epochs_total",
                        (("trainer", "full_graph"),))] == 2
        # http front end
        assert ("http_requests_total" in names
                and "http_request_seconds_count" in names)

    def test_traced_http_request_full_span_chain(self, server):
        status, _ = self._post(server, "/predict", {"node_ids": [2]})
        assert status == 200
        records = [record for record in self._records(
            server, lambda rs: any(r.get("name") == "http_request"
                                   for r in rs))
            if record.get("kind") == "span"]
        chain = {record["name"]: record for record in records}
        assert {"http_request", "batch", "forward"} <= set(chain)
        trace_ids = {record["trace_id"] for record in records}
        assert len(trace_ids) == 1
        assert chain["batch"]["parent_id"] == chain["http_request"]["span_id"]
        assert chain["forward"]["parent_id"] == chain["batch"]["span_id"]
        assert chain["http_request"]["attrs"]["status"] == 200

    def test_access_log_records_and_trace_header(self, server):
        status, body, headers = self._get(server, "/stats")
        assert status == 200
        assert "X-Trace-Id" in headers
        records = self._records(
            server, lambda rs: any(r.get("kind") == "access" for r in rs))
        access = [record for record in records
                  if record.get("kind") == "access"]
        assert access, "access sink got no records"
        entry = access[-1]
        assert entry["method"] == "GET"
        assert entry["path"] == "/stats"
        assert entry["status"] == 200
        assert entry["duration_ms"] >= 0
        assert entry["trace_id"] == headers["X-Trace-Id"]

    def test_unknown_paths_collapse_in_metric_labels(self, server):
        assert self._get(server, "/nope-123")[0] == 404
        assert self._get(server, "/nope-456")[0] == 404
        counter = server.engine.metrics.get("http_requests_total")
        # the handler counts after writing the response; wait it out
        deadline = time.monotonic() + 5.0
        while (counter.value(method="GET", path="<other>", status="404") < 2
               and time.monotonic() < deadline):
            time.sleep(0.01)
        assert counter.value(method="GET", path="<other>",
                             status="404") == 2

    def test_access_log_off_by_default(self, tiny_bundle):
        engine = InferenceEngine(ModelBundle.load(tiny_bundle["path"]),
                                 dataset=tiny_bundle["dataset"])
        server = ServingServer(engine, port=0).start_background()
        try:
            assert self._get(server, "/healthz")[0] == 200
        finally:
            server.shutdown()


# ----------------------------------------------------------------------
class TestProfilerTelemetry:
    def test_profiler_publishes_tensor_op_metrics(self, fresh_registry):
        from repro.perf import Profiler
        from repro.tensor import Tensor

        with Profiler(registry=fresh_registry):
            (Tensor(np.ones((4, 4))) @ Tensor(np.ones((4, 4)))).sum()
        seconds = fresh_registry.get("tensor_op_seconds_total")
        calls = fresh_registry.get("tensor_op_calls_total")
        assert seconds is not None and calls is not None
        assert calls.total() >= 2  # matmul + sum at least
        assert seconds.total() > 0

    def test_report_to_json_shape(self):
        from repro.perf import Profiler
        from repro.tensor import Tensor

        with Profiler() as prof:
            Tensor(np.ones((2, 2))).sum()
        payload = prof.report().to_json()
        json.dumps(payload)
        assert payload["total_calls"] >= 1
        assert payload["ops"][0]["op"]


# ----------------------------------------------------------------------
class TestSchedulerTelemetry:
    def test_trial_and_journal_counters(self, fresh_registry, tmp_path):
        from repro.autotune import (DatasetRef, TrialScheduler, TuneTask,
                                    build_strategy)

        task = TuneTask(dataset=DatasetRef("imdb", "tiny", 0),
                        model_name="gcn", hidden_dim=16, out_dim=16,
                        num_slots=4, max_budget=2)
        strategy = build_strategy("random", num_slots=task.num_slots,
                                  num_ops=task.num_ops,
                                  max_budget=task.max_budget, seed=0,
                                  num_trials=2)
        journal = tmp_path / "tune.jsonl"
        TrialScheduler(task, strategy, journal=str(journal)).run()
        trials = fresh_registry.get("tune_trials_total")
        records = fresh_registry.get("tune_journal_records_total")
        assert trials.value(status="executed") == 2
        assert records.value(kind="header") == 1
        assert records.value(kind="trial") == 2
        assert records.value(kind="footer") == 1
        assert fresh_registry.get("tune_trial_seconds").count_total() == 2
