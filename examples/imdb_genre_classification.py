"""Scenario: movie-genre classification with 77% of nodes attribute-less.

This is the paper's motivating workload (§I, Figure 1): IMDB movies carry
bag-of-words attributes, while directors, actors and keywords carry none.
The script contrasts four completion policies on a SimpleHGN backbone:

  1. handcrafted one-hot (what HGB baselines do),
  2. a single topology op for everyone (mean aggregation),
  3. HGNN-AC's attention completion (with metapath2vec pre-learning),
  4. AutoAC's searched per-cluster operations,

and then inspects which operation the search chose for the best- and
worst-connected actors — the paper's Leonardo DiCaprio / Leonie Benesch
anecdote (§V-F).

Run:  python examples/imdb_genre_classification.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.baselines import HGNNACFeatures, Metapath2VecConfig, prelearn_topology
from repro.completion import HandcraftedFeatures, SingleOpFeatures
from repro.core import AutoACConfig, run_autoac
from repro.datasets import get_dataset
from repro.models import build_model
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed


def train(dataset, features, config):
    model = build_model("simple_hgn", dataset)
    return NodeClassificationTrainer(model, features, dataset, config).train()


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    args = parser.parse_args()

    dataset = get_dataset("imdb", scale=args.scale)
    config = TrainConfig(epochs=80, patience=20)
    print(f"{dataset}\n")

    set_seed(0)
    handcrafted = train(dataset, HandcraftedFeatures(dataset, 64), config)
    print(f"one-hot handcrafted : macro-F1 {handcrafted.macro_f1:.4f}")

    set_seed(0)
    mean_only = train(dataset, SingleOpFeatures(dataset, 64, "mean"), config)
    print(f"single-op mean AC   : macro-F1 {mean_only.macro_f1:.4f}")

    set_seed(0)
    pre = prelearn_topology(dataset,
                            Metapath2VecConfig(embed_dim=32, walks_per_node=4,
                                               walk_length=16, epochs=2))
    hgnnac = train(dataset, HGNNACFeatures(dataset, 64, pre.embeddings), config)
    print(f"HGNN-AC attention   : macro-F1 {hgnnac.macro_f1:.4f} "
          f"(+{pre.seconds:.1f}s pre-learning)")

    autoac_cfg = AutoACConfig(search_epochs=60, patience=18, num_clusters=12,
                              retrain=config)
    result = run_autoac(dataset, "simple_hgn", autoac_cfg, seed=0)
    print(f"AutoAC searched     : macro-F1 {result.final.macro_f1:.4f}\n")

    # --- the DiCaprio / Benesch anecdote on synthetic actors -------------
    graph = dataset.graph
    degrees = graph.degrees()
    actor_ids = graph.global_ids("actor")
    missing_ids = dataset.missing_global_ids
    position = {int(g): i for i, g in enumerate(missing_ids)}
    ops = result.search.op_names
    star = actor_ids[np.argmax(degrees[actor_ids])]
    guest = actor_ids[np.argmin(degrees[actor_ids])]
    print("fine-grained choices (paper §V-F anecdote):")
    print(f"  busiest actor  (degree {int(degrees[star]):3d}) -> "
          f"{ops[result.search.assignment[position[int(star)]]]}")
    print(f"  guest actor    (degree {int(degrees[guest]):3d}) -> "
          f"{ops[result.search.assignment[position[int(guest)]]]}")


if __name__ == "__main__":
    main()
