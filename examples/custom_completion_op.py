"""Extending the search space with a custom completion operation.

The paper frames its search space as "general and scalable" (§IV-A): any
node-aggregation scheme can join the four built-in operations.  This
script registers a *two-hop mean* completion op (average attributes of
attributed nodes exactly two hops away — useful when the 1-hop
neighborhood is attribute-less) and lets AutoAC search over the enlarged
five-op space.

Run:  python examples/custom_completion_op.py [--scale tiny|small]

The extension points used here (``register_op``, ``SearchSpace``, and the
model registry) are documented in ``docs/EXTENDING.md``.
"""

from __future__ import annotations

import argparse

import numpy as np

from repro.completion import (
    CompletionOp,
    SearchSpace,
    available_ops,
    register_op,
)
from repro.core import AutoACConfig, run_autoac
from repro.datasets import get_dataset
from repro.tensor import Parameter, SparseTensor, Tensor, init
from repro.training import TrainConfig, set_seed


class TwoHopMeanCompletion(CompletionOp):
    """Average the attributes of attributed nodes exactly two hops away."""

    name = "two_hop_mean"

    def __init__(self, dataset, hidden_dim: int) -> None:
        super().__init__(dataset, hidden_dim)
        raw = dataset.feature_matrix_zero_filled()
        adj = dataset.graph.adjacency(symmetric=True)
        two_hop = (adj @ adj).tocsr()
        two_hop.setdiag(0)
        two_hop = (two_hop - two_hop.multiply(adj)).tocsr()  # strictly 2-hop
        two_hop.eliminate_zeros()
        two_hop.data[:] = 1.0
        # restrict to attributed columns, row-normalize, propagate — all on
        # the engine's CSR fast path (see docs/EXTENDING.md)
        mask = np.zeros(dataset.graph.num_nodes, dtype=bool)
        mask[dataset.attributed_global_ids] = True
        operator = (SparseTensor.from_scipy(two_hop)
                    .restrict_columns(mask)
                    .row_normalize())
        self._base = operator.matmul_data(raw)[self.missing_ids]
        self.weight = Parameter(init.xavier_uniform((raw.shape[1], hidden_dim)),
                                name="weight")

    def forward(self) -> Tensor:
        return Tensor(self._base) @ self.weight


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    args = parser.parse_args()

    if TwoHopMeanCompletion.name not in available_ops():
        register_op(TwoHopMeanCompletion.name, TwoHopMeanCompletion)
    print(f"registered ops: {available_ops()}\n")

    dataset = get_dataset("dblp", scale=args.scale)
    space = SearchSpace(["mean", "gcn", "ppnp", "one_hot", "two_hop_mean"])

    set_seed(0)
    config = AutoACConfig(search_epochs=60, patience=18, num_clusters=8,
                          retrain=TrainConfig(epochs=80, patience=20))
    result = run_autoac(dataset, "simple_hgn", config, space=space, seed=0)

    print(f"macro-F1 with 5-op space: {result.final.macro_f1:.4f}")
    print("searched distribution over the enlarged space:")
    for op, fraction in result.search.op_distribution().items():
        marker = "  <-- custom" if op == "two_hop_mean" else ""
        print(f"  {op:>14s}: {fraction:6.1%}{marker}")


if __name__ == "__main__":
    main()
