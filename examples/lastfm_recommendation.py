"""Scenario: music recommendation as user-artist link prediction.

LastFM's benchmark task (paper Table V): predict which artists a user will
listen to, with 10% of the user-artist edges masked for evaluation.  Only
artists carry raw attributes — users and tags are completed.  Compares a
SimpleHGN encoder under handcrafted completion against AutoAC-searched
completion, reporting ROC-AUC and MRR.

Run:  python examples/lastfm_recommendation.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse

from repro.completion import HandcraftedFeatures
from repro.core import AutoACConfig, run_autoac_link_prediction
from repro.datasets import get_dataset
from repro.models import build_model
from repro.training import (
    LinkPredConfig,
    LinkPredictionTask,
    LinkPredictionTrainer,
    set_seed,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--mask-rate", type=float, default=0.10)
    args = parser.parse_args()

    dataset = get_dataset("lastfm", scale=args.scale)
    task = LinkPredictionTask(dataset, mask_rate=args.mask_rate, seed=0)
    config = LinkPredConfig(epochs=60, patience=15)
    print(f"{dataset}")
    print(f"masked {task.split.test_pos.shape[1]} user-artist edges "
          f"for evaluation\n")

    set_seed(0)
    features = HandcraftedFeatures(task.train_graph_dataset, 64)
    model = build_model("simple_hgn", task.train_graph_dataset)
    baseline = LinkPredictionTrainer(model, features, task, config).train()
    print(f"SimpleHGN (one-hot)  : ROC-AUC {baseline.roc_auc:.4f}  "
          f"MRR {baseline.mrr:.4f}")

    autoac_cfg = AutoACConfig(search_epochs=50, patience=15, num_clusters=8)
    result = run_autoac_link_prediction(task, "simple_hgn", autoac_cfg,
                                        retrain_config=config, seed=0)
    print(f"SimpleHGN-AutoAC     : ROC-AUC {result.final.roc_auc:.4f}  "
          f"MRR {result.final.mrr:.4f}")
    print("searched op distribution:", {
        op: round(fraction, 3)
        for op, fraction in result.search.op_distribution().items()
    })


if __name__ == "__main__":
    main()
