"""Anatomy of one AutoAC search run (paper Figures 4-7 in miniature).

Runs the bi-level search on ACM, then dissects the result: the alpha
matrix, cluster sizes, the searched op per node type, and an ASCII view of
the clustering-loss convergence.

Run:  python examples/search_analysis.py [--scale tiny|small]
"""

from __future__ import annotations

import argparse
import collections

import numpy as np

from repro.core import AutoACConfig, AutoACSearcher, NodeClassificationAdapter
from repro.datasets import get_dataset
from repro.experiments.reporting import render_bar_chart
from repro.training import TrainConfig, set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--clusters", type=int, default=8)
    args = parser.parse_args()

    dataset = get_dataset("acm", scale=args.scale)
    set_seed(0)
    config = AutoACConfig(search_epochs=60, patience=18,
                          num_clusters=args.clusters,
                          retrain=TrainConfig(epochs=40, patience=12))
    searcher = AutoACSearcher(NodeClassificationAdapter(dataset),
                              "simple_hgn", config, seed=0)
    result = searcher.search()

    print(f"search finished after {result.epochs_run} epochs "
          f"({result.search_seconds:.1f}s), best val score "
          f"{result.best_val_score:.4f}\n")

    print("alpha (rows = clusters, cols = " + "/".join(result.op_names) + "):")
    print(np.array2string(result.alpha, precision=3))

    sizes = collections.Counter(result.cluster_labels.tolist())
    print("\ncluster sizes:",
          sorted(sizes.values(), reverse=True))

    print("\nsearched op distribution (Figure 5):")
    for line in render_bar_chart(result.op_distribution()):
        print(line)

    print("\nper-node-type choices (Figures 6/7):")
    missing = dataset.missing_global_ids
    type_index = dataset.graph.node_type_index[missing]
    for type_id, type_name in enumerate(dataset.graph.node_types):
        mask = type_index == type_id
        if not mask.any():
            continue
        dist = {op: float(np.mean(result.assignment[mask] == op_idx))
                for op_idx, op in enumerate(result.op_names)}
        top = max(dist, key=dist.get)
        print(f"  {type_name:>8s}: dominant={top:8s} " +
              "  ".join(f"{op}={fraction:.2f}" for op, fraction in dist.items()))

    lgmoc = result.history["lgmoc"]
    if lgmoc:
        arr = np.asarray(lgmoc)
        lo, hi = arr.min(), arr.max()
        span = max(hi - lo, 1e-9)
        chars = " .:-=+*#%@"
        spark = "".join(chars[min(int((v - lo) / span * 9), 9)] for v in arr)
        print(f"\nL_GmoC convergence (Figure 4): start={arr[0]:.4f} "
              f"end={arr[-1]:.4f}")
        print(f"  [{spark}]")


if __name__ == "__main__":
    main()
