"""Quickstart: automated attribute completion in ~20 lines.

Builds the synthetic IMDB dataset (movies have attributes; directors,
actors and keywords do not), runs the AutoAC bi-level search with a
SimpleHGN backbone, and compares against the handcrafted one-hot
completion every HGB baseline uses.

Run:  python examples/quickstart.py  [--scale tiny|small]
"""

from __future__ import annotations

import argparse

from repro.completion import HandcraftedFeatures
from repro.core import AutoACConfig, run_autoac
from repro.datasets import get_dataset
from repro.models import build_model
from repro.training import NodeClassificationTrainer, TrainConfig, set_seed


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", default="tiny",
                        choices=["tiny", "small", "medium"])
    parser.add_argument("--model", default="simple_hgn")
    args = parser.parse_args()

    dataset = get_dataset("imdb", scale=args.scale)
    print(f"dataset: {dataset}")
    print(f"missing attribute types: {dataset.missing_types} "
          f"({dataset.attribute_missing_rate:.0%} of all nodes)\n")

    # --- baseline: handcrafted one-hot completion (the HGB default) -----
    set_seed(0)
    features = HandcraftedFeatures(dataset, hidden_dim=64)
    model = build_model(args.model, dataset)
    baseline = NodeClassificationTrainer(
        model, features, dataset, TrainConfig(epochs=80, patience=20)).train()
    print(f"{args.model} + handcrafted one-hot: "
          f"macro-F1 {baseline.macro_f1:.4f}  micro-F1 {baseline.micro_f1:.4f}")

    # --- AutoAC: search the completion op for every no-attribute node ---
    config = AutoACConfig(search_epochs=80, patience=20, num_clusters=12,
                          retrain=TrainConfig(epochs=80, patience=20))
    result = run_autoac(dataset, args.model, config, seed=0)
    print(f"{args.model} + AutoAC:              "
          f"macro-F1 {result.final.macro_f1:.4f}  "
          f"micro-F1 {result.final.micro_f1:.4f}")
    print(f"search took {result.search.search_seconds:.1f}s over "
          f"{result.search.epochs_run} epochs")
    print("searched completion-op distribution:")
    for op, fraction in result.search.op_distribution().items():
        print(f"  {op:>8s}: {fraction:6.1%}")


if __name__ == "__main__":
    main()
