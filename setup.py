"""Setup shim: lets ``python setup.py develop`` work in offline environments
where the ``wheel`` package (needed by PEP 517 editable installs) is absent.
All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
